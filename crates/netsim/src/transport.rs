//! A miniature reliable, in-order message transport.
//!
//! Just enough TCP to carry the collector's rsync traffic across a lossy
//! switch fabric: message-oriented segments with 64-bit sequence numbers, a
//! fixed sliding window, cumulative ACKs, and timer-driven retransmission.
//! The state machine is polled (`poll`/`on_frame`), never callback-driven,
//! so it composes with the deterministic event loop.
//!
//! Wire format of a segment (payload of one [`Frame`]):
//!
//! ```text
//! kind(1) seq(8) ack(8) len(4) data(len)      all big-endian
//! kind: 0 = DATA, 1 = ACK
//! ```

use std::collections::{BTreeMap, VecDeque};

use bytes::{BufMut, Bytes, BytesMut};
use frostlab_simkern::time::{SimDuration, SimTime};

use crate::frame::{Frame, MacAddr};

const KIND_DATA: u8 = 0;
const KIND_ACK: u8 = 1;

/// Maximum unacknowledged messages in flight.
pub const WINDOW: usize = 8;

/// Default retransmission timeout.
pub const DEFAULT_RTO: SimDuration = SimDuration::secs(10);

/// One endpoint of a point-to-point reliable channel.
#[derive(Debug)]
pub struct Endpoint {
    local: MacAddr,
    remote: MacAddr,
    /// Next sequence number to assign to an outgoing message.
    next_seq: u64,
    /// Messages accepted from the application but not yet sent.
    send_queue: VecDeque<(u64, Bytes)>,
    /// In-flight messages: seq → (payload, last transmission time).
    in_flight: BTreeMap<u64, (Bytes, SimTime)>,
    /// Lowest sequence number not yet acknowledged by the peer.
    send_base: u64,
    /// Next sequence expected from the peer.
    recv_next: u64,
    /// Out-of-order messages held for reassembly.
    recv_buf: BTreeMap<u64, Bytes>,
    /// In-order messages ready for the application.
    delivered: VecDeque<Bytes>,
    /// ACK owed to the peer.
    ack_pending: bool,
    /// Retransmission timeout.
    pub rto: SimDuration,
    /// Total retransmissions (diagnostics).
    pub retransmissions: u64,
}

impl Endpoint {
    /// New endpoint speaking to `remote`.
    pub fn new(local: MacAddr, remote: MacAddr) -> Self {
        Endpoint {
            local,
            remote,
            next_seq: 0,
            send_queue: VecDeque::new(),
            in_flight: BTreeMap::new(),
            send_base: 0,
            recv_next: 0,
            recv_buf: BTreeMap::new(),
            delivered: VecDeque::new(),
            ack_pending: false,
            rto: DEFAULT_RTO,
            retransmissions: 0,
        }
    }

    /// Local address.
    pub fn local(&self) -> MacAddr {
        self.local
    }

    /// Queue an application message for reliable delivery.
    pub fn send(&mut self, payload: Bytes) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.send_queue.push_back((seq, payload));
    }

    /// Bytes the application has queued or in flight (back-pressure signal).
    pub fn outstanding(&self) -> usize {
        self.send_queue.len() + self.in_flight.len()
    }

    /// True when everything sent has been acknowledged.
    pub fn idle(&self) -> bool {
        self.outstanding() == 0
    }

    fn encode(&self, kind: u8, seq: u64, ack: u64, data: &Bytes) -> Frame {
        let mut b = BytesMut::with_capacity(21 + data.len());
        b.put_u8(kind);
        b.put_u64(seq);
        b.put_u64(ack);
        b.put_u32(data.len() as u32);
        b.extend_from_slice(data);
        Frame::new(self.local, self.remote, b.freeze())
    }

    /// Produce the frames to transmit at time `now`: window fills,
    /// retransmissions whose timer expired, and any owed ACK.
    pub fn poll(&mut self, now: SimTime) -> Vec<Frame> {
        let mut out = Vec::new();
        // Fill the window.
        while self.in_flight.len() < WINDOW {
            match self.send_queue.pop_front() {
                Some((seq, data)) => {
                    out.push(self.encode(KIND_DATA, seq, self.recv_next, &data));
                    self.in_flight.insert(seq, (data, now));
                }
                None => break,
            }
        }
        // Retransmit expired segments.
        let expired: Vec<u64> = self
            .in_flight
            .iter()
            .filter(|(_, (_, sent))| now - *sent >= self.rto)
            .map(|(&seq, _)| seq)
            .collect();
        for seq in expired {
            let (data, sent) = self
                .in_flight
                .get_mut(&seq)
                .expect("seq collected from the same map");
            *sent = now;
            let data = data.clone();
            self.retransmissions += 1;
            out.push(self.encode(KIND_DATA, seq, self.recv_next, &data));
        }
        // Piggyback-less ACK if owed and nothing else carried it.
        if self.ack_pending {
            out.push(self.encode(KIND_ACK, 0, self.recv_next, &Bytes::new()));
            self.ack_pending = false;
        }
        out
    }

    /// Ingest a frame addressed to this endpoint.
    pub fn on_frame(&mut self, frame: &Frame) {
        if frame.src != self.remote || frame.dst != self.local {
            return;
        }
        let p = &frame.payload;
        if p.len() < 21 {
            return; // malformed
        }
        let kind = p[0];
        let seq = u64::from_be_bytes(p[1..9].try_into().expect("length checked"));
        let ack = u64::from_be_bytes(p[9..17].try_into().expect("length checked"));
        let len = u32::from_be_bytes(p[17..21].try_into().expect("length checked")) as usize;
        if p.len() < 21 + len {
            return; // malformed
        }

        // Cumulative ACK processing (both DATA and ACK carry it).
        if ack > self.send_base {
            self.send_base = ack;
            self.in_flight.retain(|&s, _| s >= ack);
        }

        if kind == KIND_DATA {
            let data = frame.payload.slice(21..21 + len);
            if seq >= self.recv_next {
                self.recv_buf.entry(seq).or_insert(data);
                // Deliver any now-contiguous prefix.
                while let Some(d) = self.recv_buf.remove(&self.recv_next) {
                    self.delivered.push_back(d);
                    self.recv_next += 1;
                }
            }
            // Duplicate or new: either way the peer needs our current ack.
            self.ack_pending = true;
        }
    }

    /// Take everything delivered in order so far.
    pub fn take_delivered(&mut self) -> Vec<Bytes> {
        self.delivered.drain(..).collect()
    }
}

/// Drive a pair of endpoints over a [`crate::net::Network`] until both are
/// idle or `deadline` passes. Returns the simulated completion time.
///
/// This is the integration harness the collector uses: it interleaves
/// `poll`, frame transmission, network advancement and inbox drains on a
/// fixed tick.
pub fn drive_until_idle(
    net: &mut crate::net::Network,
    a: &mut Endpoint,
    b: &mut Endpoint,
    start: SimTime,
    tick: SimDuration,
    deadline: SimTime,
) -> SimTime {
    let mut now = start;
    loop {
        for f in a.poll(now) {
            net.send(f, now);
        }
        for f in b.poll(now) {
            net.send(f, now);
        }
        now += tick;
        net.advance_to(now);
        for f in net.take_inbox(a.local()) {
            a.on_frame(&f);
        }
        for f in net.take_inbox(b.local()) {
            b.on_frame(&f);
        }
        if (a.idle() && b.idle()) || now >= deadline {
            // One extra exchange so final ACKs land.
            for f in a.poll(now) {
                net.send(f, now);
            }
            for f in b.poll(now) {
                net.send(f, now);
            }
            net.advance_to(now + tick);
            for f in net.take_inbox(a.local()) {
                a.on_frame(&f);
            }
            for f in net.take_inbox(b.local()) {
                b.on_frame(&f);
            }
            return now;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Network;
    use frostlab_simkern::rng::Rng;

    fn pair() -> (Network, Endpoint, Endpoint) {
        let mut net = Network::new(&Rng::new(7));
        let sw = net.add_switch();
        let (ma, mb) = (MacAddr::from_id(1), MacAddr::from_id(2));
        net.add_host(ma);
        net.add_host(mb);
        net.attach_host(ma, sw, 0);
        net.attach_host(mb, sw, 1);
        (net, Endpoint::new(ma, mb), Endpoint::new(mb, ma))
    }

    fn msgs(n: usize) -> Vec<Bytes> {
        (0..n)
            .map(|i| Bytes::from(format!("message-{i:04}-{}", "x".repeat(i % 50))))
            .collect()
    }

    #[test]
    fn in_order_delivery_clean_network() {
        let (mut net, mut a, mut b) = pair();
        let sent = msgs(50);
        for m in &sent {
            a.send(m.clone());
        }
        drive_until_idle(
            &mut net,
            &mut a,
            &mut b,
            SimTime::ZERO,
            SimDuration::secs(2),
            SimTime::from_secs(3600),
        );
        assert_eq!(b.take_delivered(), sent);
        assert_eq!(a.retransmissions, 0);
    }

    #[test]
    fn reliable_under_heavy_loss() {
        let (mut net, mut a, mut b) = pair();
        net.loss_prob = 0.3;
        let sent = msgs(40);
        for m in &sent {
            a.send(m.clone());
        }
        drive_until_idle(
            &mut net,
            &mut a,
            &mut b,
            SimTime::ZERO,
            SimDuration::secs(2),
            SimTime::from_secs(24 * 3600),
        );
        assert_eq!(b.take_delivered(), sent, "all messages, in order, despite loss");
        assert!(a.retransmissions > 0, "loss must have forced retransmissions");
    }

    #[test]
    fn bidirectional_traffic() {
        let (mut net, mut a, mut b) = pair();
        let to_b = msgs(20);
        let to_a: Vec<Bytes> = (0..20).map(|i| Bytes::from(format!("resp-{i}"))).collect();
        for m in &to_b {
            a.send(m.clone());
        }
        for m in &to_a {
            b.send(m.clone());
        }
        drive_until_idle(
            &mut net,
            &mut a,
            &mut b,
            SimTime::ZERO,
            SimDuration::secs(2),
            SimTime::from_secs(3600),
        );
        assert_eq!(b.take_delivered(), to_b);
        assert_eq!(a.take_delivered(), to_a);
    }

    #[test]
    fn window_limits_in_flight() {
        let (_net, mut a, _b) = pair();
        for m in msgs(30) {
            a.send(m);
        }
        let frames = a.poll(SimTime::ZERO);
        let data_frames = frames.iter().filter(|f| f.payload[0] == KIND_DATA).count();
        assert_eq!(data_frames, WINDOW);
    }

    #[test]
    fn duplicates_are_suppressed() {
        let (mut net, mut a, mut b) = pair();
        a.send(Bytes::from_static(b"only-once"));
        // Transmit, deliver; then force a retransmission by never letting
        // the ACK reach back (drop everything b sends this round).
        for f in a.poll(SimTime::ZERO) {
            net.send(f, SimTime::ZERO);
        }
        net.advance_to(SimTime::from_secs(5));
        for f in net.take_inbox(b.local()) {
            b.on_frame(&f);
        }
        let _ = b.poll(SimTime::from_secs(5)); // ACK frames discarded
        // RTO expires; a retransmits; b sees a duplicate.
        let retx_at = SimTime::from_secs(15);
        for f in a.poll(retx_at) {
            net.send(f, retx_at);
        }
        net.advance_to(SimTime::from_secs(20));
        for f in net.take_inbox(b.local()) {
            b.on_frame(&f);
        }
        assert_eq!(b.take_delivered().len(), 1, "exactly one delivery");
        assert_eq!(a.retransmissions, 1);
    }

    #[test]
    fn frames_from_strangers_ignored() {
        let (_net, _a, mut b) = pair();
        let stranger = Frame::new(
            MacAddr::from_id(99),
            MacAddr::from_id(2),
            Bytes::from_static(&[0u8; 30]),
        );
        b.on_frame(&stranger);
        assert!(b.take_delivered().is_empty());
    }

    #[test]
    fn malformed_frames_ignored() {
        let (_net, a, mut b) = pair();
        let junk = Frame::new(a.remote, a.local, Bytes::from_static(b"tiny"));
        // (src=b's remote? construct directly: from a's perspective) —
        // simpler: craft a frame from the correct peer but too short.
        let short = Frame::new(MacAddr::from_id(1), MacAddr::from_id(2), Bytes::from_static(b"xy"));
        b.on_frame(&short);
        b.on_frame(&junk);
        assert!(b.take_delivered().is_empty());
    }

    #[test]
    fn large_payload_transfer() {
        let (mut net, mut a, mut b) = pair();
        let big: Vec<Bytes> = (0..16)
            .map(|i| Bytes::from(vec![i as u8; 8 * 1024]))
            .collect();
        for m in &big {
            a.send(m.clone());
        }
        drive_until_idle(
            &mut net,
            &mut a,
            &mut b,
            SimTime::ZERO,
            SimDuration::secs(2),
            SimTime::from_secs(3600),
        );
        let got = b.take_delivered();
        assert_eq!(got.len(), 16);
        assert!(got.iter().enumerate().all(|(i, m)| m.len() == 8192 && m[0] == i as u8));
    }
}
