//! A miniature reliable, in-order message transport.
//!
//! Just enough TCP to carry the collector's rsync traffic across a lossy
//! switch fabric: message-oriented segments with 64-bit sequence numbers, a
//! fixed sliding window, cumulative ACKs, and timer-driven retransmission.
//! The state machine is polled (`poll`/`on_frame`), never callback-driven,
//! so it composes with the deterministic event loop.
//!
//! Retransmission timing is adaptive (RFC 6298): the endpoint keeps a
//! smoothed RTT and RTT variance from ACKed segments, derives
//! `RTO = SRTT + max(G, 4·RTTVAR)`, doubles the RTO on every timeout
//! (exponential backoff), and — per Karn's algorithm — never samples RTT
//! from a segment that was retransmitted. A segment that exhausts
//! [`Endpoint::max_retries`] declares the peer dead instead of
//! retransmitting forever; see [`Endpoint::peer_dead`].
//!
//! Wire format of a segment (payload of one [`Frame`]):
//!
//! ```text
//! kind(1) seq(8) ack(8) len(4) data(len)      all big-endian
//! kind: 0 = DATA, 1 = ACK
//! ```

use std::collections::{BTreeMap, VecDeque};

use bytes::{BufMut, Bytes, BytesMut};
use frostlab_simkern::time::{SimDuration, SimTime};

use crate::error::NetError;
use crate::frame::{Frame, MacAddr};

const KIND_DATA: u8 = 0;
const KIND_ACK: u8 = 1;
const HEADER_LEN: usize = 21;

/// Maximum unacknowledged messages in flight.
pub const WINDOW: usize = 8;

/// Retransmission timeout before the first RTT sample (the conservative
/// pre-RFC 6298 fixed timer this transport used to run with).
pub const DEFAULT_RTO: SimDuration = SimDuration::secs(10);

/// Clock granularity `G`: the simulation runs on integer seconds.
pub const RTO_GRANULARITY: SimDuration = SimDuration::secs(1);

/// Lower clamp on the adaptive RTO.
pub const MIN_RTO: SimDuration = SimDuration::secs(1);

/// Upper clamp on the adaptive RTO (RFC 6298 permits ≥ 60 s).
pub const MAX_RTO: SimDuration = SimDuration::secs(120);

/// Default retransmissions of one segment before the peer is declared dead.
pub const DEFAULT_MAX_RETRIES: u32 = 8;

/// RFC 6298 retransmission-timeout estimator over integer seconds.
///
/// Uses Jacobson's fixed-point arithmetic: SRTT is kept scaled ×8 and
/// RTTVAR scaled ×4, so the smoothing shifts stay exact in integers.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    /// 8 × smoothed RTT, seconds. `None` until the first sample.
    srtt8: Option<i64>,
    /// 4 × RTT variance, seconds.
    rttvar4: i64,
    rto: SimDuration,
}

impl Default for RttEstimator {
    fn default() -> Self {
        RttEstimator::new()
    }
}

impl RttEstimator {
    /// Estimator in its pre-sample state ([`DEFAULT_RTO`]).
    pub fn new() -> Self {
        RttEstimator {
            srtt8: None,
            rttvar4: 0,
            rto: DEFAULT_RTO,
        }
    }

    /// Fold in one RTT measurement from a never-retransmitted segment.
    /// Recomputing from SRTT/RTTVAR also unwinds any timeout backoff.
    pub fn on_sample(&mut self, rtt: SimDuration) {
        let r = rtt.as_secs().max(0);
        match self.srtt8 {
            None => {
                // First sample: SRTT = R, RTTVAR = R/2.
                self.srtt8 = Some(r * 8);
                self.rttvar4 = r * 2;
            }
            Some(ref mut srtt8) => {
                // SRTT ← 7/8·SRTT + 1/8·R ; RTTVAR ← 3/4·RTTVAR + 1/4·|err|.
                let delta = r - (*srtt8 >> 3);
                *srtt8 += delta;
                self.rttvar4 += delta.abs() - (self.rttvar4 >> 2);
            }
        }
        let srtt = self.srtt8.unwrap_or(0) >> 3;
        let rto = srtt + self.rttvar4.max(RTO_GRANULARITY.as_secs());
        self.rto = SimDuration::secs(rto.clamp(MIN_RTO.as_secs(), MAX_RTO.as_secs()));
    }

    /// Exponential backoff after a retransmission timeout.
    pub fn on_timeout(&mut self) {
        let doubled = (self.rto.as_secs() * 2).min(MAX_RTO.as_secs());
        self.rto = SimDuration::secs(doubled);
    }

    /// Current retransmission timeout.
    pub fn rto(&self) -> SimDuration {
        self.rto
    }

    /// Smoothed RTT, once at least one sample has landed.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt8.map(|s| SimDuration::secs(s >> 3))
    }
}

/// A parsed transport segment header.
struct Segment {
    kind: u8,
    seq: u64,
    ack: u64,
    len: usize,
}

fn parse_segment(p: &[u8]) -> Result<Segment, NetError> {
    if p.len() < HEADER_LEN {
        return Err(NetError::MalformedSegment { len: p.len() });
    }
    // Lengths are checked above, so the conversions cannot fail; still,
    // route through a graceful error instead of unwrapping.
    let field = |range: std::ops::Range<usize>| -> Result<[u8; 8], NetError> {
        p.get(range)
            .and_then(|s| <[u8; 8]>::try_from(s).ok())
            .ok_or(NetError::MalformedSegment { len: p.len() })
    };
    let seq = u64::from_be_bytes(field(1..9)?);
    let ack = u64::from_be_bytes(field(9..17)?);
    let len = p
        .get(17..21)
        .and_then(|s| <[u8; 4]>::try_from(s).ok())
        .map(u32::from_be_bytes)
        .ok_or(NetError::MalformedSegment { len: p.len() })? as usize;
    if p.len() < HEADER_LEN + len {
        return Err(NetError::MalformedSegment { len: p.len() });
    }
    Ok(Segment {
        kind: p[0],
        seq,
        ack,
        len,
    })
}

/// One message awaiting acknowledgement.
#[derive(Debug)]
struct InFlight {
    data: Bytes,
    /// Last (re)transmission time: the Karn-safe RTT sample base.
    sent_at: SimTime,
    /// How many times this segment has been retransmitted.
    retries: u32,
}

/// One endpoint of a point-to-point reliable channel.
#[derive(Debug)]
pub struct Endpoint {
    local: MacAddr,
    remote: MacAddr,
    /// Next sequence number to assign to an outgoing message.
    next_seq: u64,
    /// Messages accepted from the application but not yet sent.
    send_queue: VecDeque<(u64, Bytes)>,
    /// In-flight messages by sequence number.
    in_flight: BTreeMap<u64, InFlight>,
    /// Lowest sequence number not yet acknowledged by the peer.
    send_base: u64,
    /// Next sequence expected from the peer.
    recv_next: u64,
    /// Out-of-order messages held for reassembly.
    recv_buf: BTreeMap<u64, Bytes>,
    /// In-order messages ready for the application.
    delivered: VecDeque<Bytes>,
    /// ACK owed to the peer.
    ack_pending: bool,
    /// Adaptive retransmission timer.
    rtt: RttEstimator,
    /// Retransmission budget per segment before declaring the peer dead.
    pub max_retries: u32,
    /// Set once a segment exhausts its retransmission budget.
    dead: bool,
    /// Total retransmissions (diagnostics).
    pub retransmissions: u64,
    /// Malformed segments discarded (diagnostics).
    pub malformed: u64,
}

impl Endpoint {
    /// New endpoint speaking to `remote`.
    pub fn new(local: MacAddr, remote: MacAddr) -> Self {
        Endpoint {
            local,
            remote,
            next_seq: 0,
            send_queue: VecDeque::new(),
            in_flight: BTreeMap::new(),
            send_base: 0,
            recv_next: 0,
            recv_buf: BTreeMap::new(),
            delivered: VecDeque::new(),
            ack_pending: false,
            rtt: RttEstimator::new(),
            max_retries: DEFAULT_MAX_RETRIES,
            dead: false,
            retransmissions: 0,
            malformed: 0,
        }
    }

    /// Local address.
    pub fn local(&self) -> MacAddr {
        self.local
    }

    /// Queue an application message for reliable delivery.
    pub fn send(&mut self, payload: Bytes) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.send_queue.push_back((seq, payload));
    }

    /// Bytes the application has queued or in flight (back-pressure signal).
    pub fn outstanding(&self) -> usize {
        self.send_queue.len() + self.in_flight.len()
    }

    /// True when everything sent has been acknowledged.
    pub fn idle(&self) -> bool {
        self.outstanding() == 0
    }

    /// True once a segment has been retransmitted [`Endpoint::max_retries`]
    /// times without an ACK: the connection is abandoned and [`poll`]
    /// transmits nothing further.
    ///
    /// [`poll`]: Endpoint::poll
    pub fn peer_dead(&self) -> bool {
        self.dead
    }

    /// The error state, if the connection has been abandoned.
    pub fn error(&self) -> Option<NetError> {
        self.dead.then_some(NetError::PeerDead)
    }

    /// Current retransmission timeout (adaptive; starts at [`DEFAULT_RTO`]).
    pub fn rto(&self) -> SimDuration {
        self.rtt.rto()
    }

    /// The RTT estimator (diagnostics).
    pub fn rtt_estimator(&self) -> &RttEstimator {
        &self.rtt
    }

    fn encode(&self, kind: u8, seq: u64, ack: u64, data: &Bytes) -> Frame {
        let mut b = BytesMut::with_capacity(HEADER_LEN + data.len());
        b.put_u8(kind);
        b.put_u64(seq);
        b.put_u64(ack);
        b.put_u32(data.len() as u32);
        b.extend_from_slice(data);
        Frame::new(self.local, self.remote, b.freeze())
    }

    /// Produce the frames to transmit at time `now`: window fills,
    /// retransmissions whose timer expired, and any owed ACK.
    ///
    /// Once the peer is declared dead the endpoint goes quiet (no data, no
    /// retransmissions, no ACKs).
    pub fn poll(&mut self, now: SimTime) -> Vec<Frame> {
        if self.dead {
            return Vec::new();
        }
        let mut out = Vec::new();
        // Fill the window.
        while self.in_flight.len() < WINDOW {
            match self.send_queue.pop_front() {
                Some((seq, data)) => {
                    out.push(self.encode(KIND_DATA, seq, self.recv_next, &data));
                    self.in_flight.insert(
                        seq,
                        InFlight {
                            data,
                            sent_at: now,
                            retries: 0,
                        },
                    );
                }
                None => break,
            }
        }
        // Retransmit expired segments; collect first so `encode` (which
        // borrows `self`) runs after the mutable walk.
        let rto = self.rtt.rto();
        let mut expired: Vec<(u64, Bytes)> = Vec::new();
        let mut budget_exhausted = false;
        for (&seq, inflight) in self.in_flight.iter_mut() {
            if now - inflight.sent_at >= rto {
                if inflight.retries >= self.max_retries {
                    budget_exhausted = true;
                    break;
                }
                inflight.retries += 1;
                inflight.sent_at = now;
                expired.push((seq, inflight.data.clone()));
            }
        }
        if budget_exhausted {
            self.dead = true;
            return Vec::new();
        }
        if !expired.is_empty() {
            // One backoff per timer expiry event (RFC 6298 §5.5), not per
            // segment: the expired batch shares one path estimate.
            self.rtt.on_timeout();
        }
        for (seq, data) in expired {
            self.retransmissions += 1;
            out.push(self.encode(KIND_DATA, seq, self.recv_next, &data));
        }
        // Piggyback-less ACK if owed and nothing else carried it.
        if self.ack_pending {
            out.push(self.encode(KIND_ACK, 0, self.recv_next, &Bytes::new()));
            self.ack_pending = false;
        }
        out
    }

    /// Ingest a frame addressed to this endpoint at time `now`.
    ///
    /// `now` feeds the RTT estimator: cumulative ACKs covering segments that
    /// were never retransmitted yield `now − sent_at` samples (Karn's rule
    /// excludes retransmitted segments, whose ACKs are ambiguous).
    pub fn on_frame(&mut self, frame: &Frame, now: SimTime) {
        if frame.src != self.remote || frame.dst != self.local {
            return;
        }
        let seg = match parse_segment(&frame.payload) {
            Ok(seg) => seg,
            Err(_) => {
                self.malformed += 1;
                return;
            }
        };

        // Cumulative ACK processing (both DATA and ACK carry it).
        if seg.ack > self.send_base {
            for (_, inflight) in self.in_flight.range(..seg.ack) {
                if inflight.retries == 0 {
                    self.rtt.on_sample(now - inflight.sent_at);
                }
            }
            self.send_base = seg.ack;
            self.in_flight.retain(|&s, _| s >= seg.ack);
        }

        if seg.kind == KIND_DATA {
            let data = frame.payload.slice(HEADER_LEN..HEADER_LEN + seg.len);
            if seg.seq >= self.recv_next {
                self.recv_buf.entry(seg.seq).or_insert(data);
                // Deliver any now-contiguous prefix.
                while let Some(d) = self.recv_buf.remove(&self.recv_next) {
                    self.delivered.push_back(d);
                    self.recv_next += 1;
                }
            }
            // Duplicate or new: either way the peer needs our current ack.
            self.ack_pending = true;
        }
    }

    /// Take everything delivered in order so far.
    pub fn take_delivered(&mut self) -> Vec<Bytes> {
        self.delivered.drain(..).collect()
    }
}

/// Drive a pair of endpoints over a [`crate::net::Network`] until both are
/// idle, either declares its peer dead, or `deadline` passes. Returns the
/// simulated completion time.
///
/// This is the integration harness the collector uses: it interleaves
/// `poll`, frame transmission, network advancement and inbox drains on a
/// fixed tick.
pub fn drive_until_idle(
    net: &mut crate::net::Network,
    a: &mut Endpoint,
    b: &mut Endpoint,
    start: SimTime,
    tick: SimDuration,
    deadline: SimTime,
) -> SimTime {
    let mut now = start;
    loop {
        for f in a.poll(now) {
            net.send(f, now);
        }
        for f in b.poll(now) {
            net.send(f, now);
        }
        now += tick;
        net.advance_to(now);
        for f in net.take_inbox(a.local()) {
            a.on_frame(&f, now);
        }
        for f in net.take_inbox(b.local()) {
            b.on_frame(&f, now);
        }
        let done = (a.idle() && b.idle()) || a.peer_dead() || b.peer_dead();
        if done || now >= deadline {
            // One extra exchange so final ACKs land.
            for f in a.poll(now) {
                net.send(f, now);
            }
            for f in b.poll(now) {
                net.send(f, now);
            }
            net.advance_to(now + tick);
            for f in net.take_inbox(a.local()) {
                a.on_frame(&f, now + tick);
            }
            for f in net.take_inbox(b.local()) {
                b.on_frame(&f, now + tick);
            }
            return now;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Network;
    use frostlab_simkern::rng::Rng;

    fn pair() -> (Network, Endpoint, Endpoint) {
        let mut net = Network::new(&Rng::new(7));
        let sw = net.add_switch();
        let (ma, mb) = (MacAddr::from_id(1), MacAddr::from_id(2));
        net.add_host(ma);
        net.add_host(mb);
        net.attach_host(ma, sw, 0).expect("free port");
        net.attach_host(mb, sw, 1).expect("free port");
        (net, Endpoint::new(ma, mb), Endpoint::new(mb, ma))
    }

    fn msgs(n: usize) -> Vec<Bytes> {
        (0..n)
            .map(|i| Bytes::from(format!("message-{i:04}-{}", "x".repeat(i % 50))))
            .collect()
    }

    #[test]
    fn in_order_delivery_clean_network() {
        let (mut net, mut a, mut b) = pair();
        let sent = msgs(50);
        for m in &sent {
            a.send(m.clone());
        }
        drive_until_idle(
            &mut net,
            &mut a,
            &mut b,
            SimTime::ZERO,
            SimDuration::secs(2),
            SimTime::from_secs(3600),
        );
        assert_eq!(b.take_delivered(), sent);
        assert_eq!(a.retransmissions, 0);
        assert!(!a.peer_dead());
    }

    #[test]
    fn reliable_under_heavy_loss() {
        let (mut net, mut a, mut b) = pair();
        net.loss_prob = 0.3;
        let sent = msgs(40);
        for m in &sent {
            a.send(m.clone());
        }
        drive_until_idle(
            &mut net,
            &mut a,
            &mut b,
            SimTime::ZERO,
            SimDuration::secs(2),
            SimTime::from_secs(24 * 3600),
        );
        assert_eq!(
            b.take_delivered(),
            sent,
            "all messages, in order, despite loss"
        );
        assert!(
            a.retransmissions > 0,
            "loss must have forced retransmissions"
        );
        assert!(!a.peer_dead());
    }

    #[test]
    fn rto_adapts_below_the_initial_timer() {
        let (mut net, mut a, mut b) = pair();
        let sent = msgs(40);
        for m in &sent {
            a.send(m.clone());
        }
        drive_until_idle(
            &mut net,
            &mut a,
            &mut b,
            SimTime::ZERO,
            SimDuration::secs(2),
            SimTime::from_secs(3600),
        );
        // Round trip on this two-hop path is ~4 s; after the variance term
        // settles the adaptive RTO must beat the fixed 10 s default.
        assert!(a.rtt_estimator().srtt().is_some(), "ACKs produced samples");
        assert!(
            a.rto() < DEFAULT_RTO,
            "converged rto {:?} still at/above the fixed default",
            a.rto()
        );
    }

    #[test]
    fn rto_backs_off_exponentially_while_peer_is_gone() {
        let (mut net, mut a, mut _b) = pair();
        net.set_switch_up(crate::net::SwitchId(0), false);
        a.send(Bytes::from_static(b"into the void"));
        let mut now = SimTime::ZERO;
        let mut rtos = vec![a.rto()];
        for _ in 0..10 {
            for f in a.poll(now) {
                net.send(f, now);
            }
            if a.rto() != *rtos.last().expect("seeded") {
                rtos.push(a.rto());
            }
            now += SimDuration::secs(10);
        }
        // 10 → 20 → 40 … every retransmission doubles the timer.
        assert!(rtos.len() >= 3, "expected several backoffs, saw {rtos:?}");
        assert!(rtos.windows(2).all(|w| w[1] > w[0]), "rtos {rtos:?}");
        assert!(a.retransmissions >= 2);
    }

    #[test]
    fn max_retries_declares_peer_dead() {
        let (mut net, mut a, mut b) = pair();
        net.set_switch_up(crate::net::SwitchId(0), false);
        a.send(Bytes::from_static(b"is anyone there?"));
        a.max_retries = 3;
        let end = drive_until_idle(
            &mut net,
            &mut a,
            &mut b,
            SimTime::ZERO,
            SimDuration::secs(2),
            SimTime::from_secs(14 * 24 * 3600),
        );
        assert!(a.peer_dead(), "silence must not retransmit forever");
        assert_eq!(a.error(), Some(NetError::PeerDead));
        assert_eq!(a.retransmissions, 3, "budget respected");
        assert!(
            end < SimTime::from_secs(24 * 3600),
            "gave up promptly, not at the drive deadline"
        );
        // Dead endpoints go quiet.
        assert!(a.poll(end + SimDuration::hours(1)).is_empty());
    }

    #[test]
    fn karn_rule_ignores_retransmitted_samples() {
        let (mut net, mut a, mut b) = pair();
        a.send(Bytes::from_static(b"only-once"));
        // Transmit but drop everything (switch down): forces a retransmit.
        net.set_switch_up(crate::net::SwitchId(0), false);
        for f in a.poll(SimTime::ZERO) {
            net.send(f, SimTime::ZERO);
        }
        net.advance_to(SimTime::from_secs(5));
        // Switch returns; the retransmission at t=10 (initial RTO) gets
        // through and is eventually ACKed — but its RTT is ambiguous, so no
        // sample may be taken.
        net.set_switch_up(crate::net::SwitchId(0), true);
        let retx_at = SimTime::from_secs(10);
        for f in a.poll(retx_at) {
            net.send(f, retx_at);
        }
        net.advance_to(SimTime::from_secs(13));
        for f in net.take_inbox(b.local()) {
            b.on_frame(&f, SimTime::from_secs(13));
        }
        for f in b.poll(SimTime::from_secs(13)) {
            net.send(f, SimTime::from_secs(13));
        }
        net.advance_to(SimTime::from_secs(16));
        for f in net.take_inbox(a.local()) {
            a.on_frame(&f, SimTime::from_secs(16));
        }
        assert!(a.idle(), "retransmission was ACKed");
        assert!(
            a.rtt_estimator().srtt().is_none(),
            "Karn's rule: no sample from a retransmitted segment"
        );
    }

    #[test]
    fn bidirectional_traffic() {
        let (mut net, mut a, mut b) = pair();
        let to_b = msgs(20);
        let to_a: Vec<Bytes> = (0..20).map(|i| Bytes::from(format!("resp-{i}"))).collect();
        for m in &to_b {
            a.send(m.clone());
        }
        for m in &to_a {
            b.send(m.clone());
        }
        drive_until_idle(
            &mut net,
            &mut a,
            &mut b,
            SimTime::ZERO,
            SimDuration::secs(2),
            SimTime::from_secs(3600),
        );
        assert_eq!(b.take_delivered(), to_b);
        assert_eq!(a.take_delivered(), to_a);
    }

    #[test]
    fn window_limits_in_flight() {
        let (_net, mut a, _b) = pair();
        for m in msgs(30) {
            a.send(m);
        }
        let frames = a.poll(SimTime::ZERO);
        let data_frames = frames.iter().filter(|f| f.payload[0] == KIND_DATA).count();
        assert_eq!(data_frames, WINDOW);
    }

    #[test]
    fn duplicates_are_suppressed() {
        let (mut net, mut a, mut b) = pair();
        a.send(Bytes::from_static(b"only-once"));
        // Transmit, deliver; then force a retransmission by never letting
        // the ACK reach back (drop everything b sends this round).
        for f in a.poll(SimTime::ZERO) {
            net.send(f, SimTime::ZERO);
        }
        net.advance_to(SimTime::from_secs(5));
        for f in net.take_inbox(b.local()) {
            b.on_frame(&f, SimTime::from_secs(5));
        }
        let _ = b.poll(SimTime::from_secs(5)); // ACK frames discarded
                                               // RTO expires; a retransmits; b sees a duplicate.
        let retx_at = SimTime::from_secs(15);
        for f in a.poll(retx_at) {
            net.send(f, retx_at);
        }
        net.advance_to(SimTime::from_secs(20));
        for f in net.take_inbox(b.local()) {
            b.on_frame(&f, SimTime::from_secs(20));
        }
        assert_eq!(b.take_delivered().len(), 1, "exactly one delivery");
        assert_eq!(a.retransmissions, 1);
    }

    #[test]
    fn frames_from_strangers_ignored() {
        let (_net, _a, mut b) = pair();
        let stranger = Frame::new(
            MacAddr::from_id(99),
            MacAddr::from_id(2),
            Bytes::from_static(&[0u8; 30]),
        );
        b.on_frame(&stranger, SimTime::ZERO);
        assert!(b.take_delivered().is_empty());
        assert_eq!(b.malformed, 0, "stranger frames are filtered, not parsed");
    }

    #[test]
    fn malformed_frames_ignored() {
        let (_net, a, mut b) = pair();
        let junk = Frame::new(a.remote, a.local, Bytes::from_static(b"tiny"));
        // (src=b's remote? construct directly: from a's perspective) —
        // simpler: craft a frame from the correct peer but too short.
        let short = Frame::new(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            Bytes::from_static(b"xy"),
        );
        b.on_frame(&short, SimTime::ZERO);
        b.on_frame(&junk, SimTime::ZERO);
        assert!(b.take_delivered().is_empty());
        assert_eq!(
            b.malformed, 1,
            "short peer frame counted, stranger frame filtered"
        );
    }

    #[test]
    fn large_payload_transfer() {
        let (mut net, mut a, mut b) = pair();
        let big: Vec<Bytes> = (0..16)
            .map(|i| Bytes::from(vec![i as u8; 8 * 1024]))
            .collect();
        for m in &big {
            a.send(m.clone());
        }
        drive_until_idle(
            &mut net,
            &mut a,
            &mut b,
            SimTime::ZERO,
            SimDuration::secs(2),
            SimTime::from_secs(3600),
        );
        let got = b.take_delivered();
        assert_eq!(got.len(), 16);
        assert!(got
            .iter()
            .enumerate()
            .all(|(i, m)| m.len() == 8192 && m[0] == i as u8));
    }

    #[test]
    fn estimator_tracks_and_clamps() {
        let mut e = RttEstimator::new();
        assert_eq!(e.rto(), DEFAULT_RTO);
        e.on_sample(SimDuration::secs(4));
        // First sample: SRTT=4, RTTVAR=2 → RTO = 4 + max(1, 8) = 12.
        assert_eq!(e.rto(), SimDuration::secs(12));
        for _ in 0..32 {
            e.on_sample(SimDuration::secs(4));
        }
        // Variance decays on a steady path; the ×4 fixed-point floor leaves
        // it at 3 s (3 >> 2 == 0), so RTO settles at SRTT + 3.
        assert_eq!(e.rto(), SimDuration::secs(7));
        e.on_timeout();
        assert_eq!(e.rto(), SimDuration::secs(14));
        for _ in 0..16 {
            e.on_timeout();
        }
        assert_eq!(e.rto(), MAX_RTO, "backoff clamps at MAX_RTO");
        // A fresh sample after recovery re-derives the RTO from state.
        e.on_sample(SimDuration::secs(4));
        assert!(e.rto() < MAX_RTO);
    }
}
