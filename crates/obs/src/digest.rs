//! The per-campaign health digest.
//!
//! A [`HealthDigest`] is the operator-facing summary the `obs_report`
//! bin emits: SLO attainment, the top-k hottest zones, the alert
//! timeline and the flight-recorder inventory. It is a pure projection
//! of a [`crate::CampaignObs`], so its JSON is byte-identical across
//! thread counts — CI diffs it directly.

use crate::rollup::RollupReport;
use crate::slo::{AlertRecord, SloAttainment};
use crate::CampaignObs;

/// Digest schema tag.
pub const DIGEST_SCHEMA: &str = "frostlab-health-digest/v1";

/// A rollup bucket ranked by peak temperature.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HotBucket {
    /// Bucket label (zone name).
    pub label: String,
    /// Peak case temperature (°C).
    pub temp_max_c: f64,
    /// Mean case temperature (°C).
    pub temp_mean_c: f64,
}

/// The serializable digest.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HealthDigest {
    /// Schema tag ([`DIGEST_SCHEMA`]).
    pub schema: String,
    /// Campaign name.
    pub campaign: String,
    /// Campaign seed.
    pub seed: u64,
    /// Per-SLO attainment, in spec order.
    pub slos: Vec<SloAttainment>,
    /// Top-k hottest zone buckets by peak temperature.
    pub hottest_zones: Vec<HotBucket>,
    /// The full alert timeline.
    pub alerts: Vec<AlertRecord>,
    /// Flight dumps retained.
    pub flights: u64,
}

impl HealthDigest {
    /// Build from a frozen observability record.
    pub fn from_obs(campaign: &str, seed: u64, obs: &CampaignObs, top_k: usize) -> HealthDigest {
        HealthDigest {
            schema: DIGEST_SCHEMA.to_string(),
            campaign: campaign.to_string(),
            seed,
            slos: obs.slos.clone(),
            hottest_zones: hottest(obs.rollup.as_ref(), top_k),
            alerts: obs.alerts.clone(),
            flights: obs.flights.len() as u64,
        }
    }

    /// Human-readable rendering for terminal reports.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "health digest — campaign {:?}, seed {}\n",
            self.campaign, self.seed
        ));
        out.push_str("\nSLO attainment:\n");
        for s in &self.slos {
            out.push_str(&format!(
                "  {:<22} {}  {}/{} (ratio {:.6}, target {:.6}), {} alert fire(s)\n",
                s.slo,
                if s.attained { "MET   " } else { "BREACH" },
                s.bad,
                s.total,
                s.ratio,
                s.target,
                s.fires,
            ));
        }
        if !self.hottest_zones.is_empty() {
            out.push_str("\nhottest zones (by peak case temp):\n");
            for z in &self.hottest_zones {
                out.push_str(&format!(
                    "  {:<10} max {:.2} °C, mean {:.2} °C\n",
                    z.label, z.temp_max_c, z.temp_mean_c
                ));
            }
        }
        out.push_str(&format!(
            "\nalert timeline ({} events):\n",
            self.alerts.len()
        ));
        for a in &self.alerts {
            out.push_str(&format!(
                "  {} {:<8} {} (fast burn {:.2}, slow burn {:.2})\n",
                a.at, a.action, a.slo, a.fast_burn, a.slow_burn
            ));
        }
        out.push_str(&format!("\nflight recordings: {}\n", self.flights));
        out
    }
}

/// Rank the `zone` dimension's buckets by peak temperature, ties broken
/// by label so the ordering is total and deterministic.
fn hottest(rollup: Option<&RollupReport>, top_k: usize) -> Vec<HotBucket> {
    let Some(report) = rollup else {
        return Vec::new();
    };
    let Some(dim) = report.dims.iter().find(|d| d.dim == "zone") else {
        return Vec::new();
    };
    let mut ranked: Vec<HotBucket> = dim
        .buckets
        .iter()
        .filter_map(|b| {
            Some(HotBucket {
                label: b.label.clone(),
                temp_max_c: b.temp_max_c?,
                temp_mean_c: b.temp_mean_c?,
            })
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.temp_max_c
            .partial_cmp(&a.temp_max_c)
            .expect("finite temps")
            .then_with(|| a.label.cmp(&b.label))
    });
    ranked.truncate(top_k);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rollup::{FleetRollup, RollupDim};

    fn obs_with_zones(temps: &[(&str, f64)]) -> CampaignObs {
        let labels: Vec<String> = temps.iter().map(|(l, _)| l.to_string()).collect();
        let mut dim = RollupDim::new("zone", labels);
        for (i, (_, t)) in temps.iter().enumerate() {
            dim.push(i, *t, 50.0);
            dim.push(i, *t - 4.0, 50.0);
        }
        CampaignObs {
            alerts: Vec::new(),
            slos: Vec::new(),
            rollup: Some(FleetRollup::new(vec![dim]).report()),
            flights: Vec::new(),
        }
    }

    #[test]
    fn hottest_zones_rank_by_peak_with_label_tiebreak() {
        let obs = obs_with_zones(&[("z0", 5.0), ("z1", 9.0), ("z2", 9.0), ("z3", 1.0)]);
        let digest = HealthDigest::from_obs("paper", 7, &obs, 3);
        let labels: Vec<&str> = digest
            .hottest_zones
            .iter()
            .map(|z| z.label.as_str())
            .collect();
        assert_eq!(labels, ["z1", "z2", "z0"]);
        assert_eq!(digest.hottest_zones[0].temp_max_c, 9.0);
        assert_eq!(digest.hottest_zones[0].temp_mean_c, 7.0);
    }

    #[test]
    fn digest_json_and_render_are_deterministic() {
        let obs = obs_with_zones(&[("z0", 3.0)]);
        let a = HealthDigest::from_obs("paper", 0, &obs, 5);
        let b = HealthDigest::from_obs("paper", 0, &obs, 5);
        assert_eq!(
            serde_json::to_string(&a).expect("plain data"),
            serde_json::to_string(&b).expect("plain data")
        );
        assert_eq!(a.render(), b.render());
        assert!(a.render().contains("hottest zones"));
        assert!(serde_json::to_string(&a)
            .expect("plain data")
            .starts_with("{\"schema\":\"frostlab-health-digest/v1\""));
    }
}
