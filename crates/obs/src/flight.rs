//! The incident flight recorder.
//!
//! Keeps a bounded ring of the most recent trace events **per track**
//! (so a chatty `phase/*` track cannot evict the last `watchdog` or
//! `host/*` context), fed each tick by tailing the tracer's event
//! buffer with a cursor. When an alert fires or a watchdog incident
//! opens, the rings are snapshotted into a [`FlightDump`] — the
//! surrounding context that ships with the incident.
//!
//! Dumps are held in memory (bounded by [`FlightConfig::max_dumps`])
//! and serialized by reporting bins into content-named
//! `flightrec/<hash>.jsonl` files: the name is the FNV-1a hash of the
//! dump's JSONL bytes, so identical incidents produce identical files
//! and re-runs never duplicate.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use frostlab_simkern::time::SimTime;
use frostlab_trace::TraceEvent;

/// Flight-recorder sizing.
#[derive(Debug, Clone, Copy)]
pub struct FlightConfig {
    /// Events retained per track.
    pub per_track: usize,
    /// Snapshots retained per campaign (further triggers are counted
    /// but not stored).
    pub max_dumps: usize,
}

impl Default for FlightConfig {
    fn default() -> FlightConfig {
        FlightConfig {
            per_track: 64,
            max_dumps: 32,
        }
    }
}

/// One retained event, flattened for serialization.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FlightEvent {
    /// Original emission sequence number.
    pub seq: u64,
    /// Source track.
    pub track: String,
    /// Event name.
    pub name: String,
    /// Start (sim-seconds since the epoch).
    pub start_s: i64,
    /// End for spans, absent for instants.
    pub end_s: Option<i64>,
}

/// A snapshot of the rings at a trigger.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FlightDump {
    /// Why the snapshot was taken (`alert/<slo>` or
    /// `incident/<kind>/<subject>`).
    pub reason: String,
    /// Civil sim-time of the trigger.
    pub at: String,
    /// Sim-seconds since the epoch.
    pub at_s: i64,
    /// Retained events, in original emission (`seq`) order.
    pub events: Vec<FlightEvent>,
}

impl FlightDump {
    /// Serialize as JSON lines: one header, then one line per event.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let header = serde::Value::Object(vec![
            (
                "schema".to_string(),
                serde::Value::Str("frostlab-flightrec/v1".to_string()),
            ),
            ("reason".to_string(), serde::Value::Str(self.reason.clone())),
            ("at".to_string(), serde::Value::Str(self.at.clone())),
            ("at_s".to_string(), serde::Value::Int(self.at_s)),
            (
                "events".to_string(),
                serde::Value::UInt(self.events.len() as u64),
            ),
        ]);
        out.push_str(&serde_json::to_string(&header).expect("plain data"));
        out.push('\n');
        for e in &self.events {
            out.push_str(&serde_json::to_string(e).expect("plain data"));
            out.push('\n');
        }
        out
    }

    /// The dump's content-derived file name: `<fnv1a(jsonl)>.jsonl`.
    pub fn file_name(&self) -> String {
        format!("{:016x}.jsonl", fnv1a(self.to_jsonl().as_bytes()))
    }
}

/// FNV-1a over `bytes` — the same content-hash family the farm uses for
/// job keys.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The live recorder.
#[derive(Debug)]
pub struct FlightRecorder {
    cfg: FlightConfig,
    cursor: usize,
    rings: BTreeMap<String, VecDeque<FlightEvent>>,
    dumps: Vec<FlightDump>,
    triggers: u64,
}

impl FlightRecorder {
    /// A recorder with empty rings.
    pub fn new(cfg: FlightConfig) -> FlightRecorder {
        FlightRecorder {
            cfg,
            cursor: 0,
            rings: BTreeMap::new(),
            dumps: Vec::new(),
            triggers: 0,
        }
    }

    /// Tail the tracer's event buffer: fold every event past the last
    /// cursor into its track's ring. Call once per tick with the full
    /// buffer (the recorder remembers where it left off).
    pub fn ingest(&mut self, events: &[TraceEvent]) {
        for e in &events[self.cursor.min(events.len())..] {
            let ring = self.rings.entry(e.track.clone()).or_default();
            if ring.len() == self.cfg.per_track {
                ring.pop_front();
            }
            ring.push_back(FlightEvent {
                seq: e.seq,
                track: e.track.clone(),
                name: e.name.clone(),
                start_s: e.start.as_secs(),
                end_s: e.end.map(|t| t.as_secs()),
            });
        }
        self.cursor = events.len();
    }

    /// Snapshot the rings. Beyond `max_dumps` the trigger is still
    /// counted so reports can say how much was elided.
    pub fn snapshot(&mut self, reason: &str, at: SimTime) {
        self.triggers += 1;
        if self.dumps.len() >= self.cfg.max_dumps {
            return;
        }
        let mut events: Vec<FlightEvent> = self
            .rings
            .values()
            .flat_map(|ring| ring.iter().cloned())
            .collect();
        events.sort_by_key(|e| e.seq);
        self.dumps.push(FlightDump {
            reason: reason.to_string(),
            at: at.to_string(),
            at_s: at.as_secs(),
            events,
        });
    }

    /// Snapshots triggered so far (including elided ones).
    pub fn triggers(&self) -> u64 {
        self.triggers
    }

    /// Freeze into the retained dumps.
    pub fn into_dumps(self) -> Vec<FlightDump> {
        self.dumps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frostlab_simkern::time::SimDuration;
    use frostlab_trace::{TraceConfig, Tracer};

    fn sample_events(n: i64) -> Vec<TraceEvent> {
        let mut t = Tracer::enabled(TraceConfig::default(), SimTime::ZERO);
        for i in 0..n {
            let track = if i % 3 == 0 {
                "watchdog"
            } else {
                "phase/weather"
            };
            t.instant(track, "ev", SimTime::ZERO + SimDuration::secs(i), &[]);
        }
        t.finish().expect("enabled").events
    }

    #[test]
    fn rings_bound_per_track_keeping_the_newest() {
        let mut rec = FlightRecorder::new(FlightConfig {
            per_track: 4,
            max_dumps: 8,
        });
        let events = sample_events(30);
        rec.ingest(&events);
        rec.snapshot("alert/test", SimTime::ZERO + SimDuration::secs(30));
        let dumps = rec.into_dumps();
        assert_eq!(dumps.len(), 1);
        // 4 newest per track, merged back into seq order.
        assert_eq!(dumps[0].events.len(), 8);
        let seqs: Vec<u64> = dumps[0].events.iter().map(|e| e.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted);
        let watchdog_seqs: Vec<u64> = dumps[0]
            .events
            .iter()
            .filter(|e| e.track == "watchdog")
            .map(|e| e.seq)
            .collect();
        assert_eq!(watchdog_seqs, vec![18, 21, 24, 27]);
    }

    #[test]
    fn ingest_is_cursor_based_and_idempotent_per_call() {
        let mut rec = FlightRecorder::new(FlightConfig::default());
        let events = sample_events(10);
        rec.ingest(&events[..5]);
        rec.ingest(&events); // only the 5 new ones fold in
        rec.snapshot("incident/test", SimTime::ZERO);
        let dumps = rec.into_dumps();
        assert_eq!(dumps[0].events.len(), 10);
        assert_eq!(
            dumps[0].events.iter().filter(|e| e.seq < 5).count(),
            5,
            "no event duplicated"
        );
    }

    #[test]
    fn dump_cap_counts_elided_triggers() {
        let mut rec = FlightRecorder::new(FlightConfig {
            per_track: 4,
            max_dumps: 1,
        });
        rec.ingest(&sample_events(3));
        rec.snapshot("a", SimTime::ZERO);
        rec.snapshot("b", SimTime::ZERO);
        assert_eq!(rec.triggers(), 2);
        assert_eq!(rec.into_dumps().len(), 1);
    }

    #[test]
    fn dump_file_names_are_content_derived() {
        let mut rec = FlightRecorder::new(FlightConfig::default());
        rec.ingest(&sample_events(6));
        rec.snapshot(
            "alert/corruption-rate",
            SimTime::ZERO + SimDuration::secs(6),
        );
        let dump = rec.into_dumps().remove(0);
        let name = dump.file_name();
        assert!(name.ends_with(".jsonl"));
        assert_eq!(name, dump.file_name(), "name is a pure content function");
        let jsonl = dump.to_jsonl();
        assert!(jsonl.starts_with("{\"schema\":\"frostlab-flightrec/v1\""));
        assert_eq!(jsonl.lines().count(), 7);
        // A different dump gets a different name.
        let mut other = dump.clone();
        other.reason = "alert/other".to_string();
        assert_ne!(other.file_name(), name);
    }
}
