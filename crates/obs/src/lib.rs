//! # frostlab-obs
//!
//! The fleet health observatory: dimensional rollups, a sliding-window
//! SLO engine with multi-window burn-rate alerting, and an incident
//! flight recorder. The paper is a monitoring study — its findings are
//! temperature traces, fault timelines and a corruption rate (5 bad
//! hashes in 27,627 runs); this crate turns the digital twin's raw
//! per-tick state into the same kind of operator-facing signals.
//!
//! Three pieces, all deterministic functions of sim-time and seed:
//!
//! * [`rollup`] — labeled metric families (per zone, vendor, placement)
//!   folded with the streaming [`frostlab_analysis::stats`] machinery.
//!   Memory is **O(label cardinality)**, never O(hosts × ticks): each
//!   bucket holds a Welford mean/variance, a min/max and a sample count,
//!   and the hot loop indexes dense bucket vectors — no string keys.
//! * [`slo`] — declarative [`slo::SloSpec`]s evaluated every tick over
//!   ring-buffered windows. An alert fires when **both** the fast and
//!   the slow window burn their threshold (the classic multi-window
//!   burn-rate rule: fast to catch, slow to confirm) and resolves when
//!   the fast window is clean again. Every fire/resolve is a sim-time
//!   [`slo::AlertEvent`] — byte-identical at any thread count.
//! * [`flight`] — a bounded ring of recent trace events per track,
//!   snapshotted whenever an alert fires or a watchdog incident opens,
//!   so every incident ships its surrounding context as a content-named
//!   `flightrec/*.jsonl` dump.
//!
//! The crate rides on `frostlab-trace` for event/metric plumbing and is
//! itself fed by `frostlab-core`'s observe phase, which scans the fleet
//! columns in its existing O(hosts) pass. Like the tracer, the whole
//! observatory is zero-cost when disabled: a campaign without an
//! [`ObsConfig`] carries a `None` and pays one branch per tick.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digest;
pub mod flight;
pub mod rollup;
pub mod slo;

use frostlab_simkern::time::{SimDuration, SimTime};
use frostlab_trace::Tracer;

pub use digest::{HealthDigest, HotBucket};
pub use flight::{FlightConfig, FlightDump, FlightRecorder};
pub use rollup::{BucketSummary, DimReport, FleetRollup, RollupDim, RollupReport};
pub use slo::{AlertEvent, AlertRecord, SloAttainment, SloEngine, SloFeed, SloKind, SloSpec};

/// What the observatory watches. The default is the paper's monitoring
/// posture: rollups on, the four paper SLOs, a modest flight recorder.
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Maintain per-zone/vendor/placement rollups.
    pub rollups: bool,
    /// SLOs to evaluate each tick.
    pub slos: Vec<SloSpec>,
    /// Flight-recorder ring sizing.
    pub flight: FlightConfig,
}

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig {
            rollups: true,
            slos: SloSpec::paper_defaults(),
            flight: FlightConfig::default(),
        }
    }
}

/// Live observatory state, owned by the campaign context next to the
/// tracer. Built by [`ObsState::new`] when a scenario arms
/// observability; frozen into a [`CampaignObs`] by [`ObsState::finish`].
#[derive(Debug)]
pub struct ObsState {
    rollups_enabled: bool,
    rollup: Option<FleetRollup>,
    slo: SloEngine,
    flight: FlightRecorder,
}

impl ObsState {
    /// Build the observatory for a campaign ticking every `tick`.
    pub fn new(cfg: &ObsConfig, tick: SimDuration) -> ObsState {
        ObsState {
            rollups_enabled: cfg.rollups,
            rollup: None,
            slo: SloEngine::new(&cfg.slos, tick),
            flight: FlightRecorder::new(cfg.flight),
        }
    }

    /// Are rollups wanted? (The observe phase checks before building
    /// its per-host bucket index caches.)
    pub fn rollups_enabled(&self) -> bool {
        self.rollups_enabled
    }

    /// Install the rollup dimensions on first tick (the observe phase
    /// knows the fleet's zones/vendors; this crate does not).
    pub fn init_rollup(&mut self, rollup: FleetRollup) {
        if self.rollups_enabled && self.rollup.is_none() {
            self.rollup = Some(rollup);
        }
    }

    /// The live rollup, if rollups are enabled and initialised.
    pub fn rollup_mut(&mut self) -> Option<&mut FleetRollup> {
        self.rollup.as_mut()
    }

    /// Evaluate every SLO against this tick's feed. Returned events are
    /// in spec order; the caller mirrors them into the watchdog ledger
    /// and triggers flight-recorder snapshots.
    pub fn slo_step(&mut self, now: SimTime, feed: &SloFeed) -> Vec<AlertEvent> {
        self.slo.step(now, feed)
    }

    /// The flight recorder (tail trace events in, snapshots out).
    pub fn flight_mut(&mut self) -> &mut FlightRecorder {
        &mut self.flight
    }

    /// Freeze into the campaign's observability record. Rollup summary
    /// gauges are flushed into `tracer` (as labeled families) first, so
    /// callers must invoke this **before** `tracer.finish()`.
    pub fn finish(self, tracer: &mut Tracer) -> CampaignObs {
        let rollup = self.rollup.map(|r| {
            r.flush_into(tracer);
            r.report()
        });
        let (alerts, attainment) = self.slo.finish();
        CampaignObs {
            alerts,
            slos: attainment,
            rollup,
            flights: self.flight.into_dumps(),
        }
    }
}

/// A finished campaign's frozen observability record: the alert
/// timeline, per-SLO attainment, rollup report and flight dumps.
/// Everything here is a pure function of (config, seed), so it is safe
/// to compare byte-for-byte across thread counts and repeated runs.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CampaignObs {
    /// Every alert fire/resolve, in sim-time order.
    pub alerts: Vec<AlertRecord>,
    /// End-of-campaign attainment per SLO, in spec order.
    pub slos: Vec<SloAttainment>,
    /// Dimensional rollup report (absent when rollups were disabled).
    pub rollup: Option<RollupReport>,
    /// Flight-recorder snapshots taken when alerts fired or incidents
    /// opened.
    pub flights: Vec<FlightDump>,
}

impl CampaignObs {
    /// The alert timeline as deterministic JSON lines (one record per
    /// line) — the unit of the 1-vs-4-thread byte-diff in CI.
    pub fn alert_timeline(&self) -> String {
        let mut out = String::new();
        for a in &self.alerts {
            out.push_str(&serde_json::to_string(a).expect("plain data"));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_carries_the_paper_slos() {
        let cfg = ObsConfig::default();
        assert!(cfg.rollups);
        let names: Vec<&str> = cfg.slos.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "corruption-rate",
                "collection-staleness",
                "dew-point-margin",
                "host-reset-rate"
            ]
        );
    }

    #[test]
    fn finish_before_tracer_flushes_labeled_gauges() {
        let mut state = ObsState::new(&ObsConfig::default(), SimDuration::minutes(1));
        let mut rollup = FleetRollup::new(vec![RollupDim::new(
            "zone",
            vec!["z0".to_string(), "z1".to_string()],
        )]);
        rollup.dims[0].push(0, -5.0, 40.0);
        rollup.dims[0].push(1, 2.0, 55.0);
        state.init_rollup(rollup);
        let mut tracer =
            Tracer::enabled(frostlab_trace::TraceConfig::metrics_only(), SimTime::ZERO);
        let obs = state.finish(&mut tracer);
        assert!(obs.rollup.is_some());
        let trace = tracer.finish().expect("enabled");
        assert_eq!(
            trace
                .metrics
                .gauge_labeled("zone.temp_mean_c", &[("zone", "z0")]),
            Some(-5.0)
        );
        assert_eq!(
            trace
                .metrics
                .gauge_labeled("zone.power_mean_w", &[("zone", "z1")]),
            Some(55.0)
        );
    }

    #[test]
    fn alert_timeline_is_deterministic_json_lines() {
        let obs = CampaignObs {
            alerts: vec![AlertRecord {
                slo: "corruption-rate".to_string(),
                action: "fire".to_string(),
                at: "2010-01-02 03:04:00".to_string(),
                at_s: 97440,
                fast_burn: 9.5,
                slow_burn: 2.5,
            }],
            slos: Vec::new(),
            rollup: None,
            flights: Vec::new(),
        };
        let a = obs.alert_timeline();
        assert_eq!(a, obs.alert_timeline());
        assert!(a.starts_with("{\"slo\":\"corruption-rate\",\"action\":\"fire\""));
        assert_eq!(a.lines().count(), 1);
    }
}
