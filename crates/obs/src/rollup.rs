//! Dimensional streaming rollups.
//!
//! A rollup dimension is a named label key (`zone`, `vendor`,
//! `placement`) with a fixed set of bucket labels. Each bucket folds the
//! per-host samples it receives through streaming accumulators from
//! [`frostlab_analysis::stats`], so memory is **O(label cardinality)**
//! regardless of fleet size or campaign length — the rule that keeps a
//! 10,000-host, multi-month campaign's observe phase flat.
//!
//! The hot path is index-based: the observe phase caches a per-host
//! bucket index once and calls [`RollupDim::push`] with plain `usize`s —
//! no string hashing per host per tick. Label strings appear only at
//! the edges: dimension construction and the end-of-campaign
//! [`FleetRollup::report`] / [`FleetRollup::flush_into`].

use frostlab_analysis::stats::{MinMax, Welford};
use frostlab_trace::Tracer;

/// One bucket's streaming accumulators.
#[derive(Debug, Clone, Default)]
pub struct BucketAcc {
    /// Case-temperature distribution (°C).
    pub temp: Welford,
    /// Case-temperature extremes (°C).
    pub temp_range: MinMax,
    /// Wall-power distribution (W).
    pub power: Welford,
}

/// A labeled dimension: `name` is the label key, bucket `i` carries
/// label `labels[i]`.
#[derive(Debug, Clone)]
pub struct RollupDim {
    /// Label key (`zone`, `vendor`, `placement`).
    pub name: String,
    /// Bucket labels, index-aligned with `buckets`.
    pub labels: Vec<String>,
    /// Streaming accumulators per bucket.
    pub buckets: Vec<BucketAcc>,
}

impl RollupDim {
    /// A dimension with one empty accumulator per label.
    pub fn new(name: &str, labels: Vec<String>) -> RollupDim {
        let buckets = vec![BucketAcc::default(); labels.len()];
        RollupDim {
            name: name.to_string(),
            labels,
            buckets,
        }
    }

    /// Fold one host-sample into bucket `idx`. Out-of-range indices are
    /// a caller bug; panicking here (via indexing) keeps it loud.
    #[inline]
    pub fn push(&mut self, idx: usize, temp_c: f64, power_w: f64) {
        let b = &mut self.buckets[idx];
        b.temp.push(temp_c);
        b.temp_range.push(temp_c);
        b.power.push(power_w);
    }
}

/// The campaign's rollup set — typically three dimensions (zone,
/// vendor, placement), built by the observe phase on first tick.
#[derive(Debug, Clone)]
pub struct FleetRollup {
    /// The dimensions, in construction order.
    pub dims: Vec<RollupDim>,
}

impl FleetRollup {
    /// Wrap a set of dimensions.
    pub fn new(dims: Vec<RollupDim>) -> FleetRollup {
        FleetRollup { dims }
    }

    /// Flush one summary gauge family per statistic into the tracer's
    /// labeled metrics (`zone.temp_mean_c{zone="z3"}`, …). Called once
    /// at campaign end — label strings are only touched here.
    pub fn flush_into(&self, tracer: &mut Tracer) {
        for dim in &self.dims {
            for (label, b) in dim.labels.iter().zip(&dim.buckets) {
                if b.temp.count() == 0 {
                    continue;
                }
                let labels = [(dim.name.as_str(), label.as_str())];
                if let Some(mean) = b.temp.mean() {
                    tracer.gauge_set_labeled(&format!("{}.temp_mean_c", dim.name), &labels, mean);
                }
                if let (Some(min), Some(max)) = (b.temp_range.min(), b.temp_range.max()) {
                    tracer.gauge_set_labeled(&format!("{}.temp_min_c", dim.name), &labels, min);
                    tracer.gauge_set_labeled(&format!("{}.temp_max_c", dim.name), &labels, max);
                }
                if let Some(mean) = b.power.mean() {
                    tracer.gauge_set_labeled(&format!("{}.power_mean_w", dim.name), &labels, mean);
                }
            }
        }
    }

    /// Project into the serializable end-of-campaign report.
    pub fn report(&self) -> RollupReport {
        RollupReport {
            dims: self
                .dims
                .iter()
                .map(|dim| DimReport {
                    dim: dim.name.clone(),
                    buckets: dim
                        .labels
                        .iter()
                        .zip(&dim.buckets)
                        .map(|(label, b)| BucketSummary {
                            label: label.clone(),
                            samples: b.temp.count(),
                            temp_mean_c: b.temp.mean(),
                            temp_min_c: b.temp_range.min(),
                            temp_max_c: b.temp_range.max(),
                            temp_std_c: b.temp.std_dev(),
                            power_mean_w: b.power.mean(),
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

/// Serializable rollup report: one entry per dimension.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RollupReport {
    /// Per-dimension summaries, in construction order.
    pub dims: Vec<DimReport>,
}

/// One dimension's summary.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DimReport {
    /// Label key.
    pub dim: String,
    /// Per-bucket summaries, in label order.
    pub buckets: Vec<BucketSummary>,
}

/// One bucket's end-of-campaign statistics. `None` fields mean the
/// bucket never received a sample (e.g. an empty zone).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BucketSummary {
    /// The bucket's label value.
    pub label: String,
    /// Host-samples folded into this bucket.
    pub samples: u64,
    /// Mean case temperature (°C).
    pub temp_mean_c: Option<f64>,
    /// Minimum case temperature (°C).
    pub temp_min_c: Option<f64>,
    /// Maximum case temperature (°C).
    pub temp_max_c: Option<f64>,
    /// Case-temperature standard deviation (°C).
    pub temp_std_c: Option<f64>,
    /// Mean wall power (W).
    pub power_mean_w: Option<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_zone_rollup() -> FleetRollup {
        let mut dim = RollupDim::new("zone", vec!["z0".to_string(), "z1".to_string()]);
        dim.push(0, -10.0, 40.0);
        dim.push(0, -6.0, 42.0);
        dim.push(1, 5.0, 60.0);
        FleetRollup::new(vec![dim])
    }

    #[test]
    fn buckets_fold_independently() {
        let r = two_zone_rollup().report();
        let z0 = &r.dims[0].buckets[0];
        let z1 = &r.dims[0].buckets[1];
        assert_eq!(z0.samples, 2);
        assert_eq!(z0.temp_mean_c, Some(-8.0));
        assert_eq!(z0.temp_min_c, Some(-10.0));
        assert_eq!(z0.temp_max_c, Some(-6.0));
        assert_eq!(z0.power_mean_w, Some(41.0));
        assert_eq!(z1.samples, 1);
        assert_eq!(z1.temp_mean_c, Some(5.0));
    }

    #[test]
    fn empty_buckets_report_none_and_flush_nothing() {
        let dim = RollupDim::new("vendor", vec!["A".to_string()]);
        let r = FleetRollup::new(vec![dim]);
        let report = r.report();
        assert_eq!(report.dims[0].buckets[0].samples, 0);
        assert_eq!(report.dims[0].buckets[0].temp_mean_c, None);
        let mut tracer = Tracer::enabled(
            frostlab_trace::TraceConfig::metrics_only(),
            frostlab_simkern::time::SimTime::ZERO,
        );
        r.flush_into(&mut tracer);
        assert!(tracer.finish().expect("enabled").metrics.gauges.is_empty());
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = two_zone_rollup().report();
        let json = serde_json::to_string(&report).expect("plain data");
        let back: RollupReport = serde_json::from_str(&json).expect("round trip");
        assert_eq!(back, report);
    }
}
