//! Sliding-window SLO evaluation with multi-window burn-rate alerting.
//!
//! Every SLO is declared as an [`SloSpec`]: what to watch (an
//! [`SloSource`] channel of the per-tick [`SloFeed`]), how to judge it
//! (an [`SloKind`]), and two windows with burn thresholds. Each tick the
//! engine folds the feed into both ring-buffered windows and applies the
//! classic multi-window rule — **fire** when the fast *and* the slow
//! window both exceed their thresholds (fast catches, slow confirms),
//! **resolve** when the fast window is clean again.
//!
//! Determinism: the rings hold plain numbers updated in spec order by
//! one thread per campaign; every fire/resolve is stamped with sim-time
//! only. Window sums are sums of small integers (counts and 0/1
//! indicators) stored as `f64`, so eviction arithmetic is exact and the
//! alert timeline is byte-identical across runs and thread counts.

use frostlab_simkern::time::{SimDuration, SimTime};

/// Which channel of the per-tick [`SloFeed`] a spec consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloSource {
    /// Wrong-hash results per job run (`bad_hash_delta` / `runs_delta`).
    CorruptionRate,
    /// Open collection gaps (`open_gaps`).
    OpenGaps,
    /// Minimum tent dew-point margin (`dew_margin_min_c`).
    DewPointMargin,
    /// Host watchdog resets (`resets_delta`).
    HostResets,
}

/// How a spec judges its channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SloKind {
    /// Bad/total ratio against an error budget; window burn is
    /// `(bad/total) / budget`.
    RatioBudget {
        /// Allowed bad/total ratio (the SLO's error budget).
        budget: f64,
    },
    /// Value must stay at or below `limit`; window metric is the
    /// fraction of ticks in violation.
    ValueAbove {
        /// Violation threshold (value strictly above it violates).
        limit: f64,
    },
    /// Value must stay at or above `limit`; window metric is the
    /// fraction of ticks in violation.
    ValueBelow {
        /// Violation threshold (value strictly below it violates).
        limit: f64,
    },
    /// Event rate must stay at or below `max_per_hour`; window burn is
    /// `rate / max_per_hour`.
    RateAbove {
        /// Allowed events per hour.
        max_per_hour: f64,
    },
}

/// A declarative SLO: source, judgement, and the two burn windows.
#[derive(Debug, Clone)]
pub struct SloSpec {
    /// Stable name — becomes the watchdog subject `slo/<name>`.
    pub name: String,
    /// Feed channel.
    pub source: SloSource,
    /// Judgement rule.
    pub kind: SloKind,
    /// Fast (detection) window.
    pub fast_window: SimDuration,
    /// Slow (confirmation) window.
    pub slow_window: SimDuration,
    /// Fast-window burn/fraction threshold.
    pub fast_threshold: f64,
    /// Slow-window burn/fraction threshold.
    pub slow_threshold: f64,
}

impl SloSpec {
    /// The paper's monitoring posture, in evaluation order:
    ///
    /// * `corruption-rate` — wrong-hash ratio against the paper's
    ///   measured budget of 5 bad hashes in 27,627 runs. The fast/slow
    ///   thresholds are tuned so a single bad hash at 19-host scale
    ///   burns both windows — every corruption event pages, exactly as
    ///   a 1.8×10⁻⁴ budget demands.
    /// * `collection-staleness` — fraction of ticks with any collection
    ///   gap open.
    /// * `dew-point-margin` — tent air must stay ≥ 1 °C above the dew
    ///   point (the paper's condensation guard).
    /// * `host-reset-rate` — watchdog resets per hour across the fleet.
    pub fn paper_defaults() -> Vec<SloSpec> {
        vec![
            SloSpec {
                name: "corruption-rate".to_string(),
                source: SloSource::CorruptionRate,
                kind: SloKind::RatioBudget {
                    budget: 5.0 / 27627.0,
                },
                fast_window: SimDuration::hours(6),
                slow_window: SimDuration::hours(24),
                fast_threshold: 4.0,
                slow_threshold: 1.5,
            },
            SloSpec {
                name: "collection-staleness".to_string(),
                source: SloSource::OpenGaps,
                kind: SloKind::ValueAbove { limit: 0.5 },
                fast_window: SimDuration::hours(6),
                slow_window: SimDuration::hours(24),
                fast_threshold: 0.5,
                slow_threshold: 0.25,
            },
            SloSpec {
                name: "dew-point-margin".to_string(),
                source: SloSource::DewPointMargin,
                kind: SloKind::ValueBelow { limit: 1.0 },
                fast_window: SimDuration::hours(3),
                slow_window: SimDuration::hours(12),
                fast_threshold: 0.5,
                slow_threshold: 0.25,
            },
            SloSpec {
                name: "host-reset-rate".to_string(),
                source: SloSource::HostResets,
                kind: SloKind::RateAbove { max_per_hour: 2.0 },
                fast_window: SimDuration::hours(6),
                slow_window: SimDuration::hours(24),
                fast_threshold: 1.0,
                slow_threshold: 0.5,
            },
        ]
    }
}

/// One tick's worth of raw observations, produced by the observe phase
/// in its O(hosts) fleet scan.
#[derive(Debug, Clone, Copy, Default)]
pub struct SloFeed {
    /// Job runs completed this tick.
    pub runs_delta: u64,
    /// Wrong-hash results this tick.
    pub bad_hash_delta: u64,
    /// Collection gaps currently open.
    pub open_gaps: f64,
    /// Minimum (tent temperature − dew point) across tent zones, °C.
    /// `f64::INFINITY` when no tent sensor reported.
    pub dew_margin_min_c: f64,
    /// Host watchdog resets this tick.
    pub resets_delta: u64,
}

/// A fire or resolve, stamped with sim-time.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertEvent {
    /// The spec's name.
    pub slo: String,
    /// `true` = fire, `false` = resolve.
    pub fired: bool,
    /// When it happened (sim-time).
    pub at: SimTime,
    /// Fast-window burn/fraction at the transition.
    pub fast: f64,
    /// Slow-window burn/fraction at the transition.
    pub slow: f64,
}

impl AlertEvent {
    /// Project into the serializable timeline record.
    pub fn record(&self) -> AlertRecord {
        AlertRecord {
            slo: self.slo.clone(),
            action: if self.fired { "fire" } else { "resolve" }.to_string(),
            at: self.at.to_string(),
            at_s: self.at.as_secs(),
            fast_burn: self.fast,
            slow_burn: self.slow,
        }
    }
}

/// Serializable alert-timeline record.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AlertRecord {
    /// SLO name.
    pub slo: String,
    /// `"fire"` or `"resolve"`.
    pub action: String,
    /// Civil sim-time of the transition.
    pub at: String,
    /// Sim-seconds since the epoch.
    pub at_s: i64,
    /// Fast-window burn at the transition.
    pub fast_burn: f64,
    /// Slow-window burn at the transition.
    pub slow_burn: f64,
}

/// End-of-campaign attainment for one SLO.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SloAttainment {
    /// SLO name.
    pub slo: String,
    /// Bad units over the whole campaign (bad hashes, violating ticks,
    /// reset events — per the spec's kind).
    pub bad: u64,
    /// Total units over the whole campaign (runs, ticks).
    pub total: u64,
    /// Campaign-wide ratio (bad/total, or events/hour for rate SLOs).
    pub ratio: f64,
    /// The target the ratio is judged against (budget, fraction
    /// threshold, or max events/hour).
    pub target: f64,
    /// Did the campaign stay within target?
    pub attained: bool,
    /// Alert fires over the campaign.
    pub fires: u64,
}

/// Fixed-capacity window over (a, b) tick samples with running sums.
#[derive(Debug, Clone)]
struct WindowRing {
    cap: usize,
    buf: Vec<(f64, f64)>,
    next: usize,
    sum_a: f64,
    sum_b: f64,
}

impl WindowRing {
    fn new(cap: usize) -> WindowRing {
        WindowRing {
            cap: cap.max(1),
            buf: Vec::new(),
            next: 0,
            sum_a: 0.0,
            sum_b: 0.0,
        }
    }

    fn push(&mut self, a: f64, b: f64) {
        if self.buf.len() < self.cap {
            self.buf.push((a, b));
        } else {
            let (oa, ob) = self.buf[self.next];
            self.sum_a -= oa;
            self.sum_b -= ob;
            self.buf[self.next] = (a, b);
        }
        self.next = (self.next + 1) % self.cap;
        self.sum_a += a;
        self.sum_b += b;
    }

    fn len(&self) -> usize {
        self.buf.len()
    }
}

#[derive(Debug)]
struct SloTracker {
    spec: SloSpec,
    fast: WindowRing,
    slow: WindowRing,
    firing: bool,
    total_a: u64,
    total_b: u64,
    fires: u64,
}

/// The per-campaign SLO evaluator.
#[derive(Debug)]
pub struct SloEngine {
    trackers: Vec<SloTracker>,
    tick_hours: f64,
    ticks: u64,
    alerts: Vec<AlertRecord>,
}

impl SloEngine {
    /// Build trackers for `specs`, sizing each ring to its window in
    /// ticks.
    pub fn new(specs: &[SloSpec], tick: SimDuration) -> SloEngine {
        let tick_secs = tick.as_secs().max(1);
        let trackers = specs
            .iter()
            .map(|spec| SloTracker {
                fast: WindowRing::new((spec.fast_window.as_secs() / tick_secs) as usize),
                slow: WindowRing::new((spec.slow_window.as_secs() / tick_secs) as usize),
                spec: spec.clone(),
                firing: false,
                total_a: 0,
                total_b: 0,
                fires: 0,
            })
            .collect();
        SloEngine {
            trackers,
            tick_hours: tick_secs as f64 / 3600.0,
            ticks: 0,
            alerts: Vec::new(),
        }
    }

    /// The spec names, in evaluation order.
    pub fn names(&self) -> Vec<&str> {
        self.trackers.iter().map(|t| t.spec.name.as_str()).collect()
    }

    /// Fold one tick of observations; returns transitions in spec order.
    pub fn step(&mut self, now: SimTime, feed: &SloFeed) -> Vec<AlertEvent> {
        self.ticks += 1;
        let mut events = Vec::new();
        for t in &mut self.trackers {
            let (a, b) = sample(&t.spec, feed);
            t.total_a += a as u64;
            t.total_b += b as u64;
            t.fast.push(a, b);
            t.slow.push(a, b);
            let fast = window_metric(&t.spec.kind, &t.fast, self.tick_hours);
            let slow = window_metric(&t.spec.kind, &t.slow, self.tick_hours);
            if !t.firing && fast > t.spec.fast_threshold && slow > t.spec.slow_threshold {
                t.firing = true;
                t.fires += 1;
                let ev = AlertEvent {
                    slo: t.spec.name.clone(),
                    fired: true,
                    at: now,
                    fast,
                    slow,
                };
                self.alerts.push(ev.record());
                events.push(ev);
            } else if t.firing && fast <= t.spec.fast_threshold {
                t.firing = false;
                let ev = AlertEvent {
                    slo: t.spec.name.clone(),
                    fired: false,
                    at: now,
                    fast,
                    slow,
                };
                self.alerts.push(ev.record());
                events.push(ev);
            }
        }
        events
    }

    /// Freeze into (alert timeline, per-SLO attainment).
    pub fn finish(self) -> (Vec<AlertRecord>, Vec<SloAttainment>) {
        let campaign_hours = self.ticks as f64 * self.tick_hours;
        let attainment = self
            .trackers
            .iter()
            .map(|t| {
                let (ratio, target) = match t.spec.kind {
                    SloKind::RatioBudget { budget } => (
                        if t.total_b == 0 {
                            0.0
                        } else {
                            t.total_a as f64 / t.total_b as f64
                        },
                        budget,
                    ),
                    SloKind::ValueAbove { .. } | SloKind::ValueBelow { .. } => (
                        if t.total_b == 0 {
                            0.0
                        } else {
                            t.total_a as f64 / t.total_b as f64
                        },
                        t.spec.slow_threshold,
                    ),
                    SloKind::RateAbove { max_per_hour } => (
                        if campaign_hours == 0.0 {
                            0.0
                        } else {
                            t.total_a as f64 / campaign_hours
                        },
                        max_per_hour,
                    ),
                };
                SloAttainment {
                    slo: t.spec.name.clone(),
                    bad: t.total_a,
                    total: t.total_b,
                    ratio,
                    target,
                    attained: ratio <= target,
                    fires: t.fires,
                }
            })
            .collect();
        (self.alerts, attainment)
    }
}

/// Map a feed onto a spec's (a, b) tick sample: `a` = bad units, `b` =
/// total units. Every value is a small integer count or 0/1 indicator,
/// so window sums stay exact under eviction.
fn sample(spec: &SloSpec, feed: &SloFeed) -> (f64, f64) {
    let value = match spec.source {
        SloSource::CorruptionRate => {
            return (feed.bad_hash_delta as f64, feed.runs_delta as f64);
        }
        SloSource::OpenGaps => feed.open_gaps,
        SloSource::DewPointMargin => feed.dew_margin_min_c,
        SloSource::HostResets => {
            return (feed.resets_delta as f64, 1.0);
        }
    };
    let violated = match spec.kind {
        SloKind::ValueAbove { limit } => value > limit,
        SloKind::ValueBelow { limit } => value < limit,
        _ => false,
    };
    (if violated { 1.0 } else { 0.0 }, 1.0)
}

/// A window's burn rate (ratio/rate kinds) or violation fraction
/// (value kinds).
fn window_metric(kind: &SloKind, ring: &WindowRing, tick_hours: f64) -> f64 {
    match *kind {
        SloKind::RatioBudget { budget } => {
            if ring.sum_b <= 0.0 {
                0.0
            } else {
                (ring.sum_a / ring.sum_b) / budget
            }
        }
        SloKind::ValueAbove { .. } | SloKind::ValueBelow { .. } => {
            if ring.len() == 0 {
                0.0
            } else {
                ring.sum_a / ring.len() as f64
            }
        }
        SloKind::RateAbove { max_per_hour } => {
            let hours = ring.len() as f64 * tick_hours;
            if hours == 0.0 {
                0.0
            } else {
                (ring.sum_a / hours) / max_per_hour
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TICK: SimDuration = SimDuration::minutes(1);

    fn corruption_spec() -> SloSpec {
        SloSpec {
            name: "corruption-rate".to_string(),
            source: SloSource::CorruptionRate,
            kind: SloKind::RatioBudget {
                budget: 5.0 / 27627.0,
            },
            fast_window: SimDuration::hours(6),
            slow_window: SimDuration::hours(24),
            fast_threshold: 4.0,
            slow_threshold: 1.5,
        }
    }

    fn at(tick: i64) -> SimTime {
        SimTime::ZERO + SimDuration::minutes(tick)
    }

    #[test]
    fn one_bad_hash_fires_and_window_rollout_resolves() {
        let mut eng = SloEngine::new(&[corruption_spec()], TICK);
        // Paper-ish load: one run every 5th tick, all good.
        let mut tick = 0;
        for _ in 0..1440 {
            let feed = SloFeed {
                runs_delta: if tick % 5 == 0 { 1 } else { 0 },
                ..SloFeed::default()
            };
            assert!(eng.step(at(tick), &feed).is_empty());
            tick += 1;
        }
        // One corrupted run.
        let feed = SloFeed {
            runs_delta: 1,
            bad_hash_delta: 1,
            ..SloFeed::default()
        };
        let events = eng.step(at(tick), &feed);
        tick += 1;
        assert_eq!(events.len(), 1);
        assert!(events[0].fired);
        assert!(events[0].fast > 4.0 && events[0].slow > 1.5);
        // Clean ticks: the fast window (6 h = 360 ticks) eventually
        // evicts the bad hash and the alert resolves.
        let mut resolved_at = None;
        for _ in 0..400 {
            let feed = SloFeed {
                runs_delta: if tick % 5 == 0 { 1 } else { 0 },
                ..SloFeed::default()
            };
            let events = eng.step(at(tick), &feed);
            if let Some(ev) = events.first() {
                assert!(!ev.fired);
                resolved_at = Some(tick);
                break;
            }
            tick += 1;
        }
        assert!(resolved_at.is_some(), "alert never resolved");
        let (alerts, attainment) = eng.finish();
        assert_eq!(alerts.len(), 2);
        assert_eq!(alerts[0].action, "fire");
        assert_eq!(alerts[1].action, "resolve");
        assert_eq!(attainment[0].bad, 1);
        assert_eq!(attainment[0].fires, 1);
        // 1 bad hash in ~370 runs blows a 5/27627 budget.
        assert!(!attainment[0].attained);
    }

    #[test]
    fn value_below_watches_dew_margin_fraction() {
        let spec = SloSpec {
            name: "dew-point-margin".to_string(),
            source: SloSource::DewPointMargin,
            kind: SloKind::ValueBelow { limit: 1.0 },
            fast_window: SimDuration::minutes(4),
            slow_window: SimDuration::minutes(8),
            fast_threshold: 0.5,
            slow_threshold: 0.25,
        };
        let mut eng = SloEngine::new(&[spec], TICK);
        let dry = SloFeed {
            dew_margin_min_c: 5.0,
            ..SloFeed::default()
        };
        let wet = SloFeed {
            dew_margin_min_c: 0.2,
            ..SloFeed::default()
        };
        for i in 0..8 {
            assert!(eng.step(at(i), &dry).is_empty());
        }
        // 3 wet ticks: fast fraction 3/4 > 0.5, slow 3/8 > 0.25 → fire.
        assert!(eng.step(at(8), &wet).is_empty());
        assert!(eng.step(at(9), &wet).is_empty());
        let events = eng.step(at(10), &wet);
        assert_eq!(events.len(), 1);
        assert!(events[0].fired);
        // Dry again: fast window drains below 0.5 → resolve.
        let mut saw_resolve = false;
        for i in 11..20 {
            if let Some(ev) = eng.step(at(i), &dry).first() {
                assert!(!ev.fired);
                saw_resolve = true;
                break;
            }
        }
        assert!(saw_resolve);
    }

    #[test]
    fn rate_above_judges_events_per_hour() {
        let spec = SloSpec {
            name: "host-reset-rate".to_string(),
            source: SloSource::HostResets,
            kind: SloKind::RateAbove { max_per_hour: 2.0 },
            fast_window: SimDuration::hours(1),
            slow_window: SimDuration::hours(2),
            fast_threshold: 1.0,
            slow_threshold: 0.5,
        };
        let mut eng = SloEngine::new(&[spec], TICK);
        let mut fired = false;
        // A reset every 10 minutes = 6/h = burn 3 on the fast window.
        for i in 0..240 {
            let feed = SloFeed {
                resets_delta: if i % 10 == 0 { 1 } else { 0 },
                ..SloFeed::default()
            };
            if eng.step(at(i), &feed).first().is_some_and(|e| e.fired) {
                fired = true;
                break;
            }
        }
        assert!(fired, "6 resets/hour must breach a 2/hour SLO");
    }

    #[test]
    fn engine_is_deterministic_across_reruns() {
        let run = || {
            let mut eng = SloEngine::new(&SloSpec::paper_defaults(), TICK);
            for i in 0..2000 {
                let feed = SloFeed {
                    runs_delta: 1,
                    bad_hash_delta: u64::from(i % 700 == 0),
                    open_gaps: f64::from(u8::from(i % 13 == 0)),
                    dew_margin_min_c: if i % 17 < 3 { 0.5 } else { 4.0 },
                    resets_delta: u64::from(i % 40 == 0),
                };
                eng.step(at(i as i64), &feed);
            }
            let (alerts, attainment) = eng.finish();
            (
                serde_json::to_string(&alerts).expect("plain data"),
                serde_json::to_string(&attainment).expect("plain data"),
            )
        };
        assert_eq!(run(), run());
        let (alerts, _) = run();
        assert!(alerts.contains("\"fire\""), "exercise must produce alerts");
    }

    #[test]
    fn paper_attainment_reproduces_the_measured_ratio() {
        let mut eng = SloEngine::new(&[corruption_spec()], TICK);
        // Feed exactly the paper's totals: 27,627 runs, 5 bad hashes,
        // spread so no window ever concentrates two bad hashes.
        let mut bad_left = 5;
        let mut runs_left = 27627u64;
        let mut i = 0i64;
        while runs_left > 0 {
            let bad = bad_left > 0 && i % 5525 == 5000;
            if bad {
                bad_left -= 1;
            }
            eng.step(
                at(i),
                &SloFeed {
                    runs_delta: 1,
                    bad_hash_delta: u64::from(bad),
                    ..SloFeed::default()
                },
            );
            runs_left -= 1;
            i += 1;
        }
        let (_, attainment) = eng.finish();
        let a = &attainment[0];
        assert_eq!((a.bad, a.total), (5, 27627));
        assert!(a.attained, "exactly on budget counts as attained");
        assert_eq!(a.fires, 5, "each isolated bad hash pages once");
    }
}
