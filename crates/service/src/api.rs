//! Wire types of the versioned JSON API (`/v1`).
//!
//! Every body the daemon emits round-trips through the workspace serde,
//! so clients written against [`SubmitResponse`], [`JobStatusBody`] and
//! [`ErrorBody`] parse exactly what `frostlabd` serves. The full
//! field-by-field contract — including the 429 backpressure contract and
//! copy-pasteable `curl` calls — lives in `docs/frostlabd-api.md`.
//!
//! Submissions are plain [`MatrixSpec`](frostlab_core::MatrixSpec) JSON —
//! the same manifest format `farm submit` writes — so a farm sweep and a
//! service submission are interchangeable documents.

/// Lifecycle of a submitted scenario job, rendered as a lower-case string
/// in JSON (`"queued"`, `"running"`, `"done"`, `"failed"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Admitted and waiting for a simulation worker.
    Queued,
    /// A worker is running the matrix.
    Running,
    /// All campaigns finished; artifacts are servable.
    Done,
    /// The matrix could not be completed (e.g. a poison scenario
    /// panicked); `error` on the status body says why.
    Failed,
}

impl JobPhase {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Done => "done",
            JobPhase::Failed => "failed",
        }
    }

    /// Parse the wire spelling back (clients' convenience).
    pub fn parse(s: &str) -> Option<JobPhase> {
        match s {
            "queued" => Some(JobPhase::Queued),
            "running" => Some(JobPhase::Running),
            "done" => Some(JobPhase::Done),
            "failed" => Some(JobPhase::Failed),
            _ => None,
        }
    }

    /// True once the job can never change state again.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobPhase::Done | JobPhase::Failed)
    }
}

impl serde::Serialize for JobPhase {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.as_str().to_string())
    }
}

impl serde::Deserialize for JobPhase {
    fn from_value(v: &serde::Value) -> Result<JobPhase, serde::Error> {
        let s = v.as_str()?;
        JobPhase::parse(s).ok_or_else(|| serde::Error::custom(format!("unknown job phase {s:?}")))
    }
}

/// Body of a successful `POST /v1/scenarios`.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SubmitResponse {
    /// Content hash of the canonical matrix JSON — resubmitting an
    /// identical matrix yields the same id (and, once run, a pure cache
    /// hit).
    pub job_id: String,
    /// Current lifecycle phase at response time.
    pub status: JobPhase,
    /// Campaigns the matrix expands to (scenarios × seeds).
    pub jobs_total: u64,
    /// True when this submission attached to an already-known job instead
    /// of enqueueing new work.
    pub deduplicated: bool,
}

/// Body of `GET /v1/jobs/{id}` (and embedded in error-free polling).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct JobStatusBody {
    /// The job's content-hash id.
    pub job_id: String,
    /// Current lifecycle phase.
    pub status: JobPhase,
    /// Campaigns the matrix expands to.
    pub jobs_total: u64,
    /// Campaigns finished so far (simulated or served from cache).
    pub jobs_done: u64,
    /// Campaigns served from the content-hash result cache.
    pub cache_hits: u64,
    /// Present only for failed jobs: what went wrong.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub error: Option<String>,
}

/// Uniform error body: every non-2xx response carries one.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ErrorBody {
    /// Stable machine-readable code (`bad-request`, `bad-json`,
    /// `invalid-spec`, `unknown-job`, `queue-full`, `body-too-large`,
    /// `not-ready`, `no-alerts`, `job-failed`, `method-not-allowed`,
    /// `not-found`, `internal`).
    pub error: String,
    /// Human-readable explanation.
    pub message: String,
    /// Present on 429 only: seconds to wait before retrying (the same
    /// value as the `Retry-After` header).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub retry_after_s: Option<u64>,
}

impl ErrorBody {
    /// Build an error body.
    pub fn new(error: &str, message: impl Into<String>) -> ErrorBody {
        ErrorBody {
            error: error.to_string(),
            message: message.into(),
            retry_after_s: None,
        }
    }
}

/// Body of `GET /healthz`.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct HealthBody {
    /// Always true when the daemon can respond at all.
    pub ok: bool,
    /// Daemon API version tag (`"v1"`).
    pub api: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_phase_round_trips_as_lowercase_strings() {
        for phase in [
            JobPhase::Queued,
            JobPhase::Running,
            JobPhase::Done,
            JobPhase::Failed,
        ] {
            let json = serde_json::to_string(&phase).expect("serializes");
            assert_eq!(json, format!("\"{}\"", phase.as_str()));
            let back: JobPhase = serde_json::from_str(&json).expect("parses");
            assert_eq!(back, phase);
        }
        assert!(serde_json::from_str::<JobPhase>("\"exploded\"").is_err());
        assert!(JobPhase::Done.is_terminal());
        assert!(JobPhase::Failed.is_terminal());
        assert!(!JobPhase::Running.is_terminal());
    }

    #[test]
    fn status_body_omits_absent_error() {
        let body = JobStatusBody {
            job_id: "ab".into(),
            status: JobPhase::Running,
            jobs_total: 6,
            jobs_done: 2,
            cache_hits: 1,
            error: None,
        };
        let json = serde_json::to_string(&body).expect("serializes");
        assert!(!json.contains("error"));
        let back: JobStatusBody = serde_json::from_str(&json).expect("parses");
        assert_eq!(back.jobs_done, 2);
        assert_eq!(back.status, JobPhase::Running);
    }

    #[test]
    fn error_body_carries_retry_after_only_when_set() {
        let plain = ErrorBody::new("bad-json", "parse failed");
        assert!(!serde_json::to_string(&plain)
            .expect("serializes")
            .contains("retry_after_s"));
        let mut shed = ErrorBody::new("queue-full", "try later");
        shed.retry_after_s = Some(4);
        let json = serde_json::to_string(&shed).expect("serializes");
        assert!(json.contains("\"retry_after_s\":4"));
        let back: ErrorBody = serde_json::from_str(&json).expect("parses");
        assert_eq!(back.retry_after_s, Some(4));
    }
}
