//! `frostlabd` — the scenario-serving daemon.
//!
//! Binds the configured address, spawns the simulation worker pool, and
//! serves the `/v1` API until killed. All knobs are flags; the daemon
//! reads no config files and writes nothing to disk — artifacts live in
//! memory and are served over HTTP.
//!
//! ```sh
//! frostlabd [--addr HOST:PORT] [--workers N] [--queue-cap N]
//!           [--max-body-kib N] [--validate-prom FILE]
//! ```
//!
//! `--validate-prom FILE` is an offline mode: lint FILE as Prometheus
//! text exposition (the same checker the tracer's CI gate uses) and exit
//! 0/1 — it never binds a socket. The `service-smoke` CI job runs it
//! against a live `/metrics` scrape.

use std::time::Duration;

use frostlab_service::{Server, ServerConfig};
use frostlab_trace::export::validate_prometheus;

fn usage() -> ! {
    eprintln!(
        "usage: frostlabd [--addr HOST:PORT] [--workers N] [--queue-cap N] \
         [--max-body-kib N] [--validate-prom FILE]"
    );
    std::process::exit(2);
}

fn main() {
    let mut config = ServerConfig::default();
    let mut validate: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => config.addr = val("--addr"),
            "--workers" => config.sim_workers = val("--workers").parse().expect("--workers: usize"),
            "--queue-cap" => {
                config.queue_capacity = val("--queue-cap").parse().expect("--queue-cap: usize")
            }
            "--max-body-kib" => {
                let kib: usize = val("--max-body-kib")
                    .parse()
                    .expect("--max-body-kib: usize");
                config.max_body_bytes = kib * 1024;
            }
            "--validate-prom" => validate = Some(val("--validate-prom")),
            _ => usage(),
        }
    }

    if let Some(path) = validate {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let errors = validate_prometheus(&text);
        if errors.is_empty() {
            println!("{path}: valid Prometheus exposition");
            return;
        }
        for e in &errors {
            eprintln!("{path}: {e}");
        }
        std::process::exit(1);
    }

    let server = Server::start(config).unwrap_or_else(|e| panic!("bind failed: {e}"));
    eprintln!("frostlabd serving on http://{}", server.addr());
    eprintln!("  POST /v1/scenarios        submit a MatrixSpec manifest");
    eprintln!("  GET  /v1/jobs/{{id}}        poll status (?wait_s=N long-poll)");
    eprintln!("  GET  /v1/jobs/{{id}}/summary|trace.jsonl|perfetto.json|alerts.json");
    eprintln!("  GET  /metrics             Prometheus exposition");
    eprintln!("  GET  /healthz             liveness");

    // Serve until the process is killed; the acceptor owns the socket.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
