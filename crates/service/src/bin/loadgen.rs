//! `loadgen` — request-rate and latency baseline for `frostlabd`.
//!
//! Starts an in-process [`Server`] on an ephemeral port (or targets a
//! running daemon via `--addr`), warms it with one matrix submission so
//! artifacts exist, then hammers the cheap read paths from a fixed
//! client pool and reports requests/sec with p50/p99 latency per route.
//! The measured routes are the ones a dashboard or poller would hit in
//! steady state:
//!
//! - `GET /v1/jobs/{id}` — status poll (registry lock + serialize);
//! - `GET /v1/jobs/{id}/summary` — frozen artifact serving;
//! - `POST /v1/scenarios` — deduplicated resubmission (content hash +
//!   registry lookup, no simulation).
//!
//! The report is written as JSON (`BENCH_service.json` by default) next
//! to `BENCH_baseline.json`; `BENCH_service_baseline.json` is the
//! committed reference. Latency numbers are informational — machine
//! speed varies across runners — but the shape (dedup ≈ poll ≈ artifact,
//! all well under a millisecond locally) is what reviews look at.
//!
//! ```sh
//! loadgen [--addr HOST:PORT] [--requests N] [--clients N] [--out PATH]
//! ```

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use frostlab_core::{MatrixSpec, ScenarioSpec};
use frostlab_service::client;
use frostlab_service::{Server, ServerConfig};

/// Schema tag for the load report JSON.
const SCHEMA: &str = "frostlab-bench-service/v1";

#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct RouteStats {
    /// Route label (`status-poll`, `summary`, `dedup-submit`).
    route: String,
    /// Requests issued.
    requests: u64,
    /// Non-2xx responses observed (should be 0).
    failures: u64,
    /// Aggregate requests per second across all clients.
    requests_per_s: f64,
    /// Median request latency, microseconds.
    p50_us: f64,
    /// 99th-percentile request latency, microseconds.
    p99_us: f64,
}

#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct LoadReport {
    schema: String,
    /// Requests per measured route.
    requests_per_route: u64,
    /// Concurrent client threads.
    clients: usize,
    /// Per-route throughput and latency.
    routes: Vec<RouteStats>,
}

fn usage() -> ! {
    eprintln!("usage: loadgen [--addr HOST:PORT] [--requests N] [--clients N] [--out PATH]");
    std::process::exit(2);
}

fn main() {
    let mut addr: Option<SocketAddr> = None;
    let mut requests: u64 = 2000;
    let mut clients: usize = 4;
    let mut out = "BENCH_service.json".to_string();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => addr = Some(val("--addr").parse().expect("--addr: host:port")),
            "--requests" => requests = val("--requests").parse().expect("--requests: u64"),
            "--clients" => clients = val("--clients").parse().expect("--clients: usize"),
            "--out" => out = val("--out"),
            _ => usage(),
        }
    }
    let clients = clients.max(1);

    // In-process server unless a live daemon was pointed at.
    let own_server = if addr.is_none() {
        let server = Server::start(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            ..ServerConfig::default()
        })
        .expect("bind in-process server");
        addr = Some(server.addr());
        Some(server)
    } else {
        None
    };
    let addr = addr.expect("resolved above");
    let timeout = Duration::from_secs(10);

    // Warm-up: submit a small matrix and wait until its artifacts exist,
    // so every measured request hits the steady-state (cached) path.
    let matrix = MatrixSpec {
        scenarios: vec![ScenarioSpec::new("loadgen-warm", 1, "helsinki")],
        seed_start: 0,
        seeds: 2,
    };
    let body = matrix.to_json().expect("matrix serializes");
    let submit = client::post_json(addr, "/v1/scenarios", &body, timeout).expect("warm-up submit");
    assert!(
        submit.status == 202 || submit.status == 200,
        "warm-up submit failed: {} {}",
        submit.status,
        submit.text()
    );
    let job_id = extract_job_id(submit.text());
    let status =
        client::get(addr, &format!("/v1/jobs/{job_id}?wait_s=30"), timeout).expect("warm-up poll");
    assert!(
        status.text().contains("\"done\""),
        "warm-up job did not finish: {}",
        status.text()
    );

    eprintln!("loadgen: {requests} requests x 3 routes, {clients} clients, target {addr}");
    let routes = vec![
        measure(addr, "status-poll", requests, clients, {
            let t = format!("/v1/jobs/{job_id}");
            move |a, to| client::get(a, &t, to)
        }),
        measure(addr, "summary", requests, clients, {
            let t = format!("/v1/jobs/{job_id}/summary");
            move |a, to| client::get(a, &t, to)
        }),
        measure(addr, "dedup-submit", requests, clients, {
            move |a, to| client::post_json(a, "/v1/scenarios", &body, to)
        }),
    ];

    let report = LoadReport {
        schema: SCHEMA.to_string(),
        requests_per_route: requests,
        clients,
        routes,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, format!("{json}\n")).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("{json}");
    eprintln!("loadgen: wrote {out}");

    if let Some(server) = own_server {
        server.shutdown();
    }
}

/// Issue `requests` calls of `f` from `clients` threads; fold latencies.
fn measure<F>(addr: SocketAddr, route: &str, requests: u64, clients: usize, f: F) -> RouteStats
where
    F: Fn(SocketAddr, Duration) -> std::io::Result<client::ClientResponse> + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let issued = Arc::new(AtomicU64::new(0));
    let timeout = Duration::from_secs(10);
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let f = f.clone();
            let issued = issued.clone();
            std::thread::spawn(move || {
                let mut latencies_us: Vec<f64> = Vec::new();
                let mut failures = 0u64;
                while issued.fetch_add(1, Ordering::Relaxed) < requests {
                    let t0 = Instant::now();
                    match f(addr, timeout) {
                        Ok(r) if r.status < 300 => {
                            latencies_us.push(t0.elapsed().as_secs_f64() * 1e6);
                        }
                        _ => failures += 1,
                    }
                }
                (latencies_us, failures)
            })
        })
        .collect();

    let mut latencies_us: Vec<f64> = Vec::new();
    let mut failures = 0u64;
    for h in handles {
        let (l, fails) = h.join().expect("client thread");
        latencies_us.extend(l);
        failures += fails;
    }
    let elapsed = started.elapsed().as_secs_f64();
    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let done = latencies_us.len() as u64;
    let stats = RouteStats {
        route: route.to_string(),
        requests: done + failures,
        failures,
        requests_per_s: if elapsed > 0.0 {
            (done + failures) as f64 / elapsed
        } else {
            0.0
        },
        p50_us: percentile(&latencies_us, 0.50),
        p99_us: percentile(&latencies_us, 0.99),
    };
    eprintln!(
        "  {route:>13}: {:.0} req/s, p50 {:.0} us, p99 {:.0} us, {failures} failures",
        stats.requests_per_s, stats.p50_us, stats.p99_us
    );
    stats
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Pull `job_id` out of a submit response without a full parse — the
/// same trick the CI smoke job's shell uses.
fn extract_job_id(body: &str) -> String {
    body.split("\"job_id\"")
        .nth(1)
        .and_then(|rest| rest.split('"').nth(1))
        .map(str::to_string)
        .unwrap_or_else(|| panic!("no job_id in {body}"))
}
