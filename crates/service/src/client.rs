//! Tiny blocking HTTP client — the test and `loadgen` counterpart of
//! [`crate::http`].
//!
//! Speaks exactly the dialect `frostlabd` serves: one request per
//! connection, `Content-Length` bodies, read-to-EOF responses (the
//! daemon always answers `Connection: close`). Not a general HTTP
//! client and not trying to be.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response: status, lower-cased headers, raw body.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of a header, looked up case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (panics on non-text bodies; the API is JSON).
    pub fn text(&self) -> &str {
        std::str::from_utf8(&self.body).expect("utf-8 response body")
    }
}

/// `GET target` against `addr`.
pub fn get(addr: SocketAddr, target: &str, timeout: Duration) -> std::io::Result<ClientResponse> {
    request(addr, "GET", target, None, timeout)
}

/// `POST target` with a JSON body against `addr`.
pub fn post_json(
    addr: SocketAddr,
    target: &str,
    json: &str,
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    request(addr, "POST", target, Some(json.as_bytes()), timeout)
}

/// One full request/response exchange over a fresh connection.
pub fn request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: Option<&[u8]>,
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;

    let body = body.unwrap_or(&[]);
    let mut head = format!("{method} {target} HTTP/1.1\r\nhost: {addr}\r\nconnection: close\r\n");
    if !body.is_empty() {
        head.push_str(&format!(
            "content-type: application/json\r\ncontent-length: {}\r\n",
            body.len()
        ));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    // The daemon closes after one response, so EOF delimits it.
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> std::io::Result<ClientResponse> {
    let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("no head terminator in response"))?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| bad("non-utf8 head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let headers = lines
        .filter(|l| !l.is_empty())
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Ok(ClientResponse {
        status,
        headers,
        body: raw[head_end + 4..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_response() {
        let raw = b"HTTP/1.1 429 Too Many Requests\r\ncontent-type: application/json\r\n\
                    Retry-After: 4\r\ncontent-length: 2\r\n\r\n{}";
        let r = parse_response(raw).expect("parses");
        assert_eq!(r.status, 429);
        assert_eq!(r.header("retry-after"), Some("4"));
        assert_eq!(r.header("RETRY-AFTER"), Some("4"));
        assert_eq!(r.text(), "{}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http at all").is_err());
        assert!(parse_response(b"HTTP/1.1 ???\r\n\r\n").is_err());
    }
}
