//! Matrix execution with content-hash response caching.
//!
//! [`execute_matrix`] is the bridge between a `POST /v1/scenarios` body
//! and the ensemble engine. It walks the matrix's canonical expansion —
//! scenario-major, seed-minor, exactly the order
//! [`run_matrix_sweep`](frostlab_ensemble::run_matrix_sweep) uses — and
//! folds one [`CampaignSummary`] per job into a [`CampaignAggregate`],
//! so the frozen summary artifact is **byte-identical** to
//! `ensemble --matrix --invariant` for the same matrix (the
//! `service-smoke` CI job diffs the two).
//!
//! Caching follows `frostlab-farm`'s `ResultStore` discipline: entries
//! are keyed by [`JobSpec::key`] — the FNV-1a hash of the job's canonical
//! JSON — so identical (scenario, seed) pairs collide on purpose, across
//! matrices and across submissions. Because campaigns are deterministic,
//! a cached summary is indistinguishable from a re-simulated one, which
//! is what makes serving from cache sound.
//!
//! The **first job** of every matrix additionally runs with the tracer
//! armed (tracing is perturbation-free — the `trace-determinism` CI gate
//! pins that) to produce the `trace.jsonl` / `perfetto.json` artifacts.

use std::collections::HashMap;
use std::sync::Mutex;

use frostlab_core::results::CampaignSummary;
use frostlab_core::scenario::ScenarioBuilder;
use frostlab_core::spec::{JobSpec, ScenarioSpec};
use frostlab_core::MatrixSpec;
use frostlab_ensemble::{CampaignAggregate, EnsembleAlerts, SeedAlerts};
use frostlab_obs::ObsConfig;
use frostlab_trace::export::{to_chrome_trace, to_jsonl};
use frostlab_trace::TraceConfig;

use crate::registry::Artifacts;

/// One cached campaign outcome: the summary plus, for observed jobs, the
/// alert view that folds into the matrix's `alerts.json`.
#[derive(Debug, Clone)]
pub struct CachedCampaign {
    /// The campaign's compact summary projection.
    pub summary: CampaignSummary,
    /// Alert view (observed scenarios only).
    pub alerts: Option<SeedAlerts>,
}

/// In-memory content-addressed result cache, keyed by [`JobSpec::key`].
///
/// Unlike the farm's on-disk store this one holds live values, so cached
/// summaries never round-trip through JSON — there is no float
/// normalization boundary to defend.
#[derive(Debug, Default)]
pub struct ResultCache {
    entries: Mutex<HashMap<String, CachedCampaign>>,
}

impl ResultCache {
    /// Empty cache.
    pub fn new() -> ResultCache {
        ResultCache::default()
    }

    /// Fetch the campaign cached under `key`.
    pub fn get(&self, key: &str) -> Option<CachedCampaign> {
        self.entries.lock().expect("cache lock").get(key).cloned()
    }

    /// Store a campaign under `key`.
    pub fn put(&self, key: &str, value: CachedCampaign) {
        self.entries
            .lock()
            .expect("cache lock")
            .insert(key.to_string(), value);
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache lock").len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Why a matrix could not be completed.
#[derive(Debug, Clone)]
pub enum ExecError {
    /// A scenario failed validation (unknown climate, bad day count).
    InvalidSpec(String),
    /// A campaign panicked mid-run (e.g. a poison scenario).
    CampaignPanicked {
        /// Index of the job in the matrix's canonical expansion.
        job_index: usize,
        /// Panic payload rendered to text.
        message: String,
    },
    /// An artifact failed to serialize (never expected for plain data).
    Serialize(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::InvalidSpec(m) => write!(f, "invalid spec: {m}"),
            ExecError::CampaignPanicked { job_index, message } => {
                write!(f, "campaign {job_index} panicked: {message}")
            }
            ExecError::Serialize(m) => write!(f, "artifact serialization failed: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Per-execution accounting the server folds into its metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Campaigns actually simulated by this execution.
    pub simulated: u64,
    /// Campaigns served from the result cache.
    pub cache_hits: u64,
}

/// Observer hook: called once per finished campaign with `cache_hit`.
/// The server uses it to tick `jobs_done` on the registry so status
/// polls see live progress.
pub type ProgressFn<'a> = dyn Fn(bool) + 'a;

/// Run every job of `matrix` (serving repeats from `cache`) and freeze
/// the servable artifacts.
///
/// The summary artifact is rendered with
/// [`EnsembleSummary::invariant_json`](frostlab_ensemble::EnsembleSummary::invariant_json),
/// the thread-count-masked form, so it can be byte-compared against any
/// in-process ensemble run of the same matrix.
pub fn execute_matrix(
    matrix: &MatrixSpec,
    cache: &ResultCache,
    progress: &ProgressFn<'_>,
) -> Result<(Artifacts, ExecStats), ExecError> {
    matrix
        .validate()
        .map_err(|e| ExecError::InvalidSpec(e.to_string()))?;
    let jobs = matrix.expand();
    let mut agg = CampaignAggregate::new();
    let mut alerts = EnsembleAlerts::new(matrix.seed_start);
    let any_observed = jobs.iter().any(|j| j.scenario.observe);
    let mut stats = ExecStats::default();
    let mut trace_jsonl = String::new();
    let mut perfetto_json = String::new();

    for (i, job) in jobs.iter().enumerate() {
        let key = job.key().map_err(|e| ExecError::Serialize(e.to_string()))?;
        let representative = i == 0;
        let cached = cache.get(&key);
        let outcome = match cached {
            // A cached non-representative job costs nothing. A cached
            // representative still re-runs (traced) below when the trace
            // artifacts are needed, but its summary comes from the run
            // either way — the two are identical by determinism.
            Some(hit) if !representative => {
                stats.cache_hits += 1;
                progress(true);
                hit
            }
            was_cached => {
                let run = run_campaign(job, i, representative)?;
                let hit = was_cached.is_some();
                if hit {
                    stats.cache_hits += 1;
                } else {
                    stats.simulated += 1;
                    cache.put(&key, run.outcome.clone());
                }
                if representative {
                    trace_jsonl = run.trace_jsonl;
                    perfetto_json = run.perfetto_json;
                }
                progress(hit);
                run.outcome
            }
        };
        agg.absorb(&outcome.summary);
        if let Some(seed_alerts) = outcome.alerts {
            alerts.absorb(seed_alerts);
        }
    }

    // Trailing newline included: `ensemble --matrix --invariant` prints
    // with println!, and "byte-identical to the CLI" means every byte.
    let summary_json = agg
        .finish(matrix.seed_start, 0)
        .invariant_json()
        .map(|json| format!("{json}\n"))
        .map_err(|e| ExecError::Serialize(e.to_string()))?;
    let alerts_json = if any_observed {
        Some(
            alerts
                .to_json()
                .map_err(|e| ExecError::Serialize(e.to_string()))?,
        )
    } else {
        None
    };
    Ok((
        Artifacts {
            summary_json,
            trace_jsonl,
            perfetto_json,
            alerts_json,
        },
        stats,
    ))
}

struct CampaignRun {
    outcome: CachedCampaign,
    trace_jsonl: String,
    perfetto_json: String,
}

/// Build and run one campaign, optionally traced. Mirrors
/// [`ScenarioSpec::build`] exactly (paper pipeline + observability +
/// poison), with the tracer wrapped around the representative so the
/// matrix gets its `trace.jsonl`/`perfetto.json` artifacts.
fn run_campaign(job: &JobSpec, index: usize, traced: bool) -> Result<CampaignRun, ExecError> {
    let spec = &job.scenario;
    let seed = job.seed;
    let scenario = if traced {
        build_traced(spec, seed)?
    } else {
        spec.build(seed)
            .map_err(|e| ExecError::InvalidSpec(e.to_string()))?
    };
    let results = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| scenario.run()))
        .map_err(|payload| ExecError::CampaignPanicked {
            job_index: index,
            message: panic_text(payload),
        })?;
    let (trace_jsonl, perfetto_json) = match results.trace.as_ref() {
        Some(trace) => (
            to_jsonl(trace).map_err(|e| ExecError::Serialize(e.to_string()))?,
            to_chrome_trace(trace).map_err(|e| ExecError::Serialize(e.to_string()))?,
        ),
        None => (String::new(), String::new()),
    };
    Ok(CampaignRun {
        outcome: CachedCampaign {
            summary: results.summary(),
            alerts: results.obs.as_ref().map(|o| SeedAlerts::from_obs(seed, o)),
        },
        trace_jsonl,
        perfetto_json,
    })
}

/// [`ScenarioSpec::build`] with the tracer armed: paper pipeline,
/// tracing, then observability/poison in the same order `build` uses
/// (`with_tracing`/`with_observability` arm-order commutes — PR 9).
fn build_traced(spec: &ScenarioSpec, seed: u64) -> Result<frostlab_core::Scenario, ExecError> {
    let cfg = spec
        .to_config(seed)
        .map_err(|e| ExecError::InvalidSpec(e.to_string()))?;
    let mut b = ScenarioBuilder::paper(cfg).with_tracing(TraceConfig::default());
    if spec.observe {
        b = b.with_observability(ObsConfig::default());
    }
    if spec.poison {
        b = b.push(Box::new(frostlab_core::spec::PanicPhase::after_ticks(
            frostlab_core::spec::POISON_PANIC_TICK,
        )));
    }
    Ok(b.build())
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frostlab_ensemble::run_matrix_sweep;
    use std::cell::Cell;

    fn tiny_matrix() -> MatrixSpec {
        MatrixSpec {
            scenarios: vec![ScenarioSpec::new("svc-exec", 1, "helsinki")],
            seed_start: 3,
            seeds: 2,
        }
    }

    #[test]
    fn summary_is_byte_identical_to_matrix_sweep() {
        let matrix = tiny_matrix();
        let cache = ResultCache::new();
        let (artifacts, stats) = execute_matrix(&matrix, &cache, &|_| {}).expect("runs");
        let reference = run_matrix_sweep(&matrix, 1)
            .expect("valid")
            .invariant_json()
            .expect("serializes");
        // The artifact carries the CLI's trailing newline.
        assert_eq!(artifacts.summary_json, format!("{reference}\n"));
        assert_eq!(stats.simulated, 2);
        assert_eq!(stats.cache_hits, 0);
        // The representative trace artifacts are populated.
        assert!(artifacts.trace_jsonl.contains("frostlab-trace/v1"));
        assert!(artifacts.perfetto_json.contains("traceEvents"));
        // No observed scenarios ⇒ no alerts artifact.
        assert!(artifacts.alerts_json.is_none());
    }

    #[test]
    fn second_execution_is_served_from_cache_with_identical_bytes() {
        let matrix = tiny_matrix();
        let cache = ResultCache::new();
        let hits = Cell::new(0u32);
        let (first, s1) = execute_matrix(&matrix, &cache, &|_| {}).expect("runs");
        let (second, s2) = execute_matrix(&matrix, &cache, &|hit| {
            if hit {
                hits.set(hits.get() + 1);
            }
        })
        .expect("runs");
        assert_eq!(first.summary_json, second.summary_json);
        assert_eq!(first.trace_jsonl, second.trace_jsonl);
        assert_eq!(first.perfetto_json, second.perfetto_json);
        assert_eq!(s1.simulated, 2);
        // Second pass: the representative re-runs for its trace but still
        // counts as a cache hit; the other campaign is a pure hit.
        assert_eq!(s2.simulated, 0);
        assert_eq!(s2.cache_hits, 2);
        assert_eq!(hits.get(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn observed_matrix_produces_alerts_identical_to_observed_fold() {
        let mut spec = ScenarioSpec::new("svc-obs", 1, "helsinki");
        spec.observe = true;
        let matrix = MatrixSpec {
            scenarios: vec![spec],
            seed_start: 0,
            seeds: 2,
        };
        let cache = ResultCache::new();
        let (artifacts, _) = execute_matrix(&matrix, &cache, &|_| {}).expect("runs");
        let alerts_json = artifacts.alerts_json.expect("observed matrix has alerts");
        assert!(alerts_json.contains("frostlab-ensemble-alerts/v1"));
        assert!(alerts_json.contains("\"campaigns\": 2"));
    }

    #[test]
    fn poison_matrix_fails_typed_without_poisoning_the_cache() {
        let mut poison = ScenarioSpec::new("svc-poison", 1, "helsinki");
        poison.poison = true;
        let matrix = MatrixSpec {
            scenarios: vec![poison],
            seed_start: 0,
            seeds: 1,
        };
        let cache = ResultCache::new();
        let err = execute_matrix(&matrix, &cache, &|_| {}).expect_err("panics");
        match err {
            ExecError::CampaignPanicked { job_index, message } => {
                assert_eq!(job_index, 0);
                assert!(message.contains("poison"));
            }
            other => panic!("expected CampaignPanicked, got {other:?}"),
        }
        assert!(cache.is_empty(), "failed campaigns must not be cached");
    }

    #[test]
    fn invalid_climate_is_rejected_before_any_simulation() {
        let matrix = MatrixSpec {
            scenarios: vec![ScenarioSpec::new("x", 1, "atlantis")],
            seed_start: 0,
            seeds: 1,
        };
        let cache = ResultCache::new();
        assert!(matches!(
            execute_matrix(&matrix, &cache, &|_| {}),
            Err(ExecError::InvalidSpec(_))
        ));
        assert!(cache.is_empty());
    }
}
