//! Bounded-concurrency admission gate — how heavy traffic degrades
//! gracefully instead of falling over.
//!
//! The gate is a fixed-capacity FIFO of job ids plus a count of jobs
//! currently held by workers. Admission is all-or-nothing at enqueue
//! time: when the queue is full the submission is **shed** with a
//! [`GateFull`] carrying a `Retry-After` estimate, and the daemon's
//! memory stays bounded by `capacity × sizeof(job id)` no matter how
//! hard clients push. In-flight jobs are never cancelled — shedding only
//! refuses *new* work.
//!
//! The `Retry-After` estimate is deliberately coarse: backlog depth
//! (queued + in-flight) times a per-job pace, clamped to `1..=60`
//! seconds. It tells a well-behaved client when a retry has a chance,
//! not when its own job would finish.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Shed signal: the queue was full at enqueue time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateFull {
    /// Suggested client back-off, seconds (also the `Retry-After` header).
    pub retry_after_s: u64,
}

/// Rough seconds a queued matrix takes to drain — used only to scale the
/// `Retry-After` hint, never to schedule anything.
const PACE_S_PER_JOB: u64 = 2;

#[derive(Debug, Default)]
struct GateState {
    queue: VecDeque<String>,
    in_flight: usize,
    closed: bool,
}

/// Fixed-capacity admission queue feeding the simulation workers.
#[derive(Debug)]
pub struct AdmissionGate {
    state: Mutex<GateState>,
    ready: Condvar,
    capacity: usize,
}

impl AdmissionGate {
    /// A gate admitting at most `capacity` queued jobs (≥ 1).
    pub fn new(capacity: usize) -> AdmissionGate {
        AdmissionGate {
            state: Mutex::new(GateState::default()),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Try to admit a job. Full queue ⇒ [`GateFull`] with the back-off
    /// hint; never blocks.
    pub fn try_enqueue(&self, job_id: &str) -> Result<(), GateFull> {
        let mut s = self.state.lock().expect("gate lock");
        if s.closed {
            return Err(GateFull { retry_after_s: 1 });
        }
        if s.queue.len() >= self.capacity {
            let backlog = (s.queue.len() + s.in_flight) as u64;
            return Err(GateFull {
                retry_after_s: (backlog * PACE_S_PER_JOB).clamp(1, 60),
            });
        }
        s.queue.push_back(job_id.to_string());
        drop(s);
        self.ready.notify_one();
        Ok(())
    }

    /// Worker side: block until a job is available or the gate closes.
    /// `None` means the gate closed and the worker should exit.
    pub fn dequeue(&self) -> Option<String> {
        let mut s = self.state.lock().expect("gate lock");
        loop {
            if let Some(id) = s.queue.pop_front() {
                s.in_flight += 1;
                return Some(id);
            }
            if s.closed {
                return None;
            }
            s = self.ready.wait(s).expect("gate lock");
        }
    }

    /// Worker side: a dequeued job finished (successfully or not).
    pub fn finish(&self) {
        let mut s = self.state.lock().expect("gate lock");
        s.in_flight = s.in_flight.saturating_sub(1);
    }

    /// Jobs waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        self.state.lock().expect("gate lock").queue.len()
    }

    /// Jobs currently held by workers.
    pub fn in_flight(&self) -> usize {
        self.state.lock().expect("gate lock").in_flight
    }

    /// Close the gate: queued jobs still drain, but new submissions shed
    /// and idle workers wake up and exit.
    pub fn close(&self) {
        self.state.lock().expect("gate lock").closed = true;
        self.ready.notify_all();
    }

    /// Block (with polling granularity `tick`) until nothing is queued
    /// or in flight — the drain barrier `shutdown` uses.
    pub fn drain(&self, tick: Duration) {
        loop {
            let s = self.state.lock().expect("gate lock");
            if s.queue.is_empty() && s.in_flight == 0 {
                return;
            }
            drop(s);
            std::thread::sleep(tick);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sheds_above_capacity_with_backoff_hint() {
        let gate = AdmissionGate::new(2);
        gate.try_enqueue("a").expect("fits");
        gate.try_enqueue("b").expect("fits");
        let shed = gate.try_enqueue("c").expect_err("full");
        assert!(shed.retry_after_s >= 1);
        assert_eq!(gate.queue_depth(), 2);
        // Draining one admits one more.
        assert_eq!(gate.dequeue().as_deref(), Some("a"));
        gate.try_enqueue("c").expect("fits after dequeue");
        assert_eq!(gate.in_flight(), 1);
        gate.finish();
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn retry_after_grows_with_backlog_and_clamps() {
        let gate = AdmissionGate::new(1);
        gate.try_enqueue("a").expect("fits");
        let one = gate.try_enqueue("x").expect_err("full").retry_after_s;
        // Pull the job in flight; backlog (1 queued + 1 running) after refill.
        gate.dequeue().expect("job");
        gate.try_enqueue("b").expect("fits");
        let two = gate.try_enqueue("x").expect_err("full").retry_after_s;
        assert!(two >= one);
        assert!(two <= 60);
    }

    #[test]
    fn fifo_order_and_close_wakes_workers() {
        let gate = Arc::new(AdmissionGate::new(8));
        gate.try_enqueue("a").expect("fits");
        gate.try_enqueue("b").expect("fits");
        assert_eq!(gate.dequeue().as_deref(), Some("a"));
        assert_eq!(gate.dequeue().as_deref(), Some("b"));
        // A blocked worker exits when the gate closes.
        let worker = {
            let gate = gate.clone();
            std::thread::spawn(move || gate.dequeue())
        };
        std::thread::sleep(Duration::from_millis(20));
        gate.close();
        assert_eq!(worker.join().expect("worker"), None);
        // Closed gate sheds immediately.
        assert!(gate.try_enqueue("c").is_err());
    }

    #[test]
    fn drain_waits_for_in_flight_work() {
        let gate = Arc::new(AdmissionGate::new(4));
        gate.try_enqueue("a").expect("fits");
        let id = gate.dequeue().expect("job");
        assert_eq!(id, "a");
        let finisher = {
            let gate = gate.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                gate.finish();
            })
        };
        gate.drain(Duration::from_millis(5));
        assert_eq!(gate.in_flight(), 0);
        finisher.join().expect("finisher");
    }
}
