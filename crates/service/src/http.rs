//! Minimal HTTP/1.1 framing — just enough wire protocol for `frostlabd`.
//!
//! The build container has no async runtime or HTTP crate, so the daemon
//! carries its own ~200-line request reader and response writer over
//! blocking `TcpStream`s. The subset is deliberate: one request per
//! connection (`Connection: close`), `Content-Length` bodies only (no
//! chunked transfer), capped head and body sizes so a hostile or broken
//! client can never balloon memory, and socket read/write timeouts set by
//! the server so a stalled peer can never wedge a connection worker.
//!
//! Nothing here knows about routes or JSON — [`crate::server`] layers the
//! API on top.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Largest accepted request head (request line + headers), bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Why a request could not be read off the wire.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, header, or framing.
    BadRequest(String),
    /// Head or body exceeded its configured cap.
    TooLarge {
        /// Which part overflowed (`"request head"` / `"request body"`).
        what: &'static str,
        /// The cap that was exceeded, bytes.
        limit: usize,
    },
    /// Socket-level failure (includes read/write timeouts).
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(m) => write!(f, "bad request: {m}"),
            HttpError::TooLarge { what, limit } => {
                write!(f, "{what} exceeds the {limit}-byte cap")
            }
            HttpError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

/// A parsed request: method, origin-form target, lower-cased headers, raw
/// body bytes.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, … (upper-case as sent).
    pub method: String,
    /// Request target as sent, e.g. `/v1/jobs/abc?wait_s=5`.
    pub target: String,
    /// Header `(name, value)` pairs; names lower-cased at parse time.
    pub headers: Vec<(String, String)>,
    /// Raw body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, looked up case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The target split into path and query string (query without `?`).
    pub fn path_and_query(&self) -> (&str, Option<&str>) {
        match self.target.split_once('?') {
            Some((p, q)) => (p, Some(q)),
            None => (self.target.as_str(), None),
        }
    }

    /// Value of a query parameter, if present (`k=v` pairs, `&`-joined;
    /// no percent-decoding — the API uses plain token values only).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        let (_, q) = self.path_and_query();
        q?.split('&')
            .filter_map(|pair| pair.split_once('='))
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }
}

/// Read one request off `stream`, enforcing the head cap and `max_body`.
///
/// Returns `Ok(None)` when the peer closed the connection before sending
/// a single byte (a bare keep-alive probe, not an error).
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Option<Request>, HttpError> {
    // Accumulate until the blank line that ends the head.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge {
                what: "request head",
                limit: MAX_HEAD_BYTES,
            });
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            if buf.is_empty() {
                return Ok(None);
            }
            return Err(HttpError::BadRequest("eof inside request head".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::BadRequest("non-utf8 request head".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request line".into()))?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && t.starts_with('/') => (m, t, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::BadRequest(format!(
            "unsupported version {version:?}"
        )));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("malformed header {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    // Body: Content-Length only; chunked transfer is out of scope.
    if headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::BadRequest(
            "chunked transfer encoding is not supported".into(),
        ));
    }
    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::BadRequest(format!("bad content-length {v:?}")))?,
        None => 0,
    };
    if content_length > max_body {
        return Err(HttpError::TooLarge {
            what: "request body",
            limit: max_body,
        });
    }

    // The head scan may have over-read into the body.
    let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::BadRequest("eof inside request body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    Ok(Some(Request {
        method: method.to_string(),
        target: target.to_string(),
        headers,
        body,
    }))
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A response ready to serialize: status, extra headers, body.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// Extra headers beyond the standard set, e.g. `Retry-After`.
    pub extra_headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with the given status and body.
    pub fn new(status: u16, content_type: &'static str, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type,
            extra_headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Add an extra header (builder-style).
    pub fn with_header(mut self, name: &str, value: String) -> Response {
        self.extra_headers.push((name.to_string(), value));
        self
    }

    /// Canonical reason phrase for the status codes the API uses.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serialize head + body to the wire. One response per connection:
    /// always `Connection: close`.
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        );
        for (k, v) in &self.extra_headers {
            head.push_str(&format!("{k}: {v}\r\n"));
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Push raw bytes through a real socket pair and parse them.
    fn parse(raw: &[u8], max_body: usize) -> Result<Option<Request>, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(&raw).expect("write");
            // Close the write half so short bodies hit eof.
        });
        let (mut conn, _) = listener.accept().expect("accept");
        let parsed = read_request(&mut conn, max_body);
        writer.join().expect("writer");
        parsed
    }

    #[test]
    fn parses_post_with_body_and_headers() {
        let raw = b"POST /v1/scenarios HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\
                    Content-Type: application/json\r\n\r\nhello";
        let req = parse(raw, 1024).expect("parses").expect("present");
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/v1/scenarios");
        assert_eq!(req.header("content-type"), Some("application/json"));
        assert_eq!(req.header("CONTENT-TYPE"), Some("application/json"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn parses_get_without_body_and_splits_query() {
        let raw = b"GET /v1/jobs/ab12?wait_s=5&x=1 HTTP/1.1\r\nHost: x\r\n\r\n";
        let req = parse(raw, 1024).expect("parses").expect("present");
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
        let (path, query) = req.path_and_query();
        assert_eq!(path, "/v1/jobs/ab12");
        assert_eq!(query, Some("wait_s=5&x=1"));
        assert_eq!(req.query_param("wait_s"), Some("5"));
        assert_eq!(req.query_param("x"), Some("1"));
        assert_eq!(req.query_param("missing"), None);
    }

    #[test]
    fn rejects_oversized_body_via_declared_length() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\n";
        match parse(raw, 10) {
            Err(HttpError::TooLarge { what, limit }) => {
                assert_eq!(what, "request body");
                assert_eq!(limit, 10);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_request_line_and_bad_version() {
        assert!(matches!(
            parse(b"BROKEN\r\n\r\n", 10),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"GET / HTTP/2.0\r\n\r\n", 10),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"GET noslash HTTP/1.1\r\n\r\n", 10),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn empty_connection_reads_as_none() {
        assert!(parse(b"", 10).expect("clean close").is_none());
    }

    #[test]
    fn response_serializes_with_extra_headers() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let writer = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().expect("accept");
            Response::new(429, "application/json", "{}")
                .with_header("retry-after", "3".to_string())
                .write_to(&mut conn)
                .expect("write");
        });
        let mut s = TcpStream::connect(addr).expect("connect");
        let mut text = String::new();
        s.read_to_string(&mut text).expect("read");
        writer.join().expect("writer");
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("retry-after: 3\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
