//! frostlab-service: scenario-serving HTTP API over the ensemble engine.
//!
//! The `frostlabd` daemon turns the batch toolchain into a service:
//! clients `POST` a [`MatrixSpec`](frostlab_core::MatrixSpec) — the same
//! manifest document `farm submit` and `ensemble --matrix` consume — and
//! poll a content-hash job id for status and artifacts. The API is
//! versioned under `/v1` and documented field-by-field in
//! `docs/frostlabd-api.md`.
//!
//! Three properties define the design:
//!
//! - **Byte-identical results.** A job's `summary` artifact is the
//!   invariant-form `EnsembleSummary` JSON, folded in the same
//!   scenario-major, seed-minor order as
//!   [`run_matrix_sweep`](frostlab_ensemble::run_matrix_sweep), so
//!   `GET /v1/jobs/{id}/summary` byte-matches
//!   `ensemble --matrix --invariant` for the same matrix. CI diffs the
//!   two on every push (`service-smoke`).
//! - **Content-hash caching.** Job ids are FNV-1a hashes of canonical
//!   matrix JSON; per-campaign results are cached under
//!   [`JobSpec::key`](frostlab_core::JobSpec::key). Identical
//!   submissions deduplicate at the job level; overlapping matrices
//!   share campaign results. Determinism is what makes serving from
//!   cache indistinguishable from re-simulating.
//! - **Bounded everything.** A fixed-capacity [`AdmissionGate`] sheds
//!   excess submissions with `429` + `Retry-After`; request heads and
//!   bodies are size-capped; socket timeouts bound every connection.
//!   The daemon's memory is a function of its configuration, not of its
//!   traffic.
//!
//! Module map: [`http`] (wire framing) → [`server`] (router, workers) →
//! [`exec`] (matrix execution + cache) over [`registry`] (job lifecycle)
//! and [`gate`] (admission); [`api`] holds the wire types and [`client`]
//! a minimal blocking client for tests and `loadgen`.

#![warn(missing_docs)]

pub mod api;
pub mod client;
pub mod exec;
pub mod gate;
pub mod http;
pub mod registry;
pub mod server;

pub use api::{ErrorBody, HealthBody, JobPhase, JobStatusBody, SubmitResponse};
pub use exec::{ExecStats, ResultCache};
pub use gate::{AdmissionGate, GateFull};
pub use registry::{job_id, Artifacts, JobEntry, JobRegistry};
pub use server::{Server, ServerConfig, MAX_WAIT_S};
