//! In-memory job registry: every submitted matrix, its lifecycle, and
//! its frozen artifacts.
//!
//! A job's id is the FNV-1a content hash of its canonical (compact)
//! matrix JSON — the same digest discipline as
//! [`JobSpec::key`](frostlab_core::JobSpec::key) — so resubmitting an
//! identical matrix *is* the original job: the registry deduplicates on
//! insert and the handler layer serves the finished artifacts without
//! touching the admission gate.
//!
//! Status watchers (`GET /v1/jobs/{id}?wait_s=N`) block on the registry
//! condvar, which is notified on every state transition, so long-polling
//! costs no busy-waiting.

use std::collections::HashMap;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use frostlab_core::spec::fnv1a;
use frostlab_core::MatrixSpec;

use crate::api::JobPhase;

/// The servable outputs of a finished job, frozen as bytes at completion
/// time so every later `GET` returns identical responses.
#[derive(Debug, Clone, Default)]
pub struct Artifacts {
    /// Invariant-form `EnsembleSummary` JSON — byte-identical to
    /// `ensemble --matrix --invariant` for the same matrix.
    pub summary_json: String,
    /// JSONL event log of the representative (first) campaign.
    pub trace_jsonl: String,
    /// Chrome trace-event JSON of the representative campaign.
    pub perfetto_json: String,
    /// Merged `EnsembleAlerts` JSON; `None` when no scenario in the
    /// matrix armed observability.
    pub alerts_json: Option<String>,
}

/// One registered job.
#[derive(Debug, Clone)]
pub struct JobEntry {
    /// The submitted matrix (canonical form).
    pub matrix: MatrixSpec,
    /// Lifecycle phase.
    pub phase: JobPhase,
    /// Campaigns the matrix expands to.
    pub jobs_total: u64,
    /// Campaigns finished so far.
    pub jobs_done: u64,
    /// Campaigns served from the content-hash cache.
    pub cache_hits: u64,
    /// Failure explanation (failed jobs only).
    pub error: Option<String>,
    /// Frozen outputs (done jobs only).
    pub artifacts: Option<Artifacts>,
}

/// Compute a job id: `{:016x}` FNV-1a of the canonical compact matrix
/// JSON. Whitespace or key-order differences in the submitted text do
/// not change the id because the matrix is re-serialized first.
pub fn job_id(matrix: &MatrixSpec) -> Result<String, serde_json::Error> {
    Ok(format!(
        "{:016x}",
        fnv1a(serde_json::to_string(matrix)?.as_bytes())
    ))
}

/// What a submission did to the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The job is new; the caller must enqueue it for execution.
    New,
    /// The id was already registered (any phase); nothing to enqueue.
    Deduplicated,
}

/// Thread-safe map from job id to [`JobEntry`], with a condvar for
/// long-poll watchers.
#[derive(Debug, Default)]
pub struct JobRegistry {
    jobs: Mutex<HashMap<String, JobEntry>>,
    changed: Condvar,
}

impl JobRegistry {
    /// Empty registry.
    pub fn new() -> JobRegistry {
        JobRegistry::default()
    }

    /// Register a submission, deduplicating on the content-hash id.
    pub fn submit(&self, id: &str, matrix: &MatrixSpec) -> SubmitOutcome {
        let mut jobs = self.jobs.lock().expect("registry lock");
        if jobs.contains_key(id) {
            return SubmitOutcome::Deduplicated;
        }
        jobs.insert(
            id.to_string(),
            JobEntry {
                matrix: matrix.clone(),
                phase: JobPhase::Queued,
                jobs_total: matrix.jobs(),
                jobs_done: 0,
                cache_hits: 0,
                error: None,
                artifacts: None,
            },
        );
        SubmitOutcome::New
    }

    /// Snapshot one job.
    pub fn get(&self, id: &str) -> Option<JobEntry> {
        self.jobs.lock().expect("registry lock").get(id).cloned()
    }

    /// Remove a job that could not be enqueued (admission shed after
    /// registration), so a retry of the same matrix starts clean.
    pub fn forget(&self, id: &str) {
        self.jobs.lock().expect("registry lock").remove(id);
        self.changed.notify_all();
    }

    /// Move a job to `Running`.
    pub fn mark_running(&self, id: &str) {
        self.update(id, |e| e.phase = JobPhase::Running);
    }

    /// Record one finished campaign (optionally a cache hit).
    pub fn record_campaign(&self, id: &str, cache_hit: bool) {
        self.update(id, |e| {
            e.jobs_done += 1;
            if cache_hit {
                e.cache_hits += 1;
            }
        });
    }

    /// Freeze a finished job's artifacts and mark it `Done`.
    pub fn mark_done(&self, id: &str, artifacts: Artifacts) {
        self.update(id, |e| {
            e.phase = JobPhase::Done;
            e.artifacts = Some(artifacts);
        });
    }

    /// Mark a job `Failed` with an explanation.
    pub fn mark_failed(&self, id: &str, error: String) {
        self.update(id, |e| {
            e.phase = JobPhase::Failed;
            e.error = Some(error);
        });
    }

    /// Block until the job reaches a terminal phase or `timeout` passes;
    /// returns the latest snapshot either way (`None` for unknown ids).
    pub fn wait_terminal(&self, id: &str, timeout: Duration) -> Option<JobEntry> {
        let deadline = Instant::now() + timeout;
        let mut jobs = self.jobs.lock().expect("registry lock");
        loop {
            match jobs.get(id) {
                None => return None,
                Some(e) if e.phase.is_terminal() => return Some(e.clone()),
                Some(e) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Some(e.clone());
                    }
                    let (guard, _) = self
                        .changed
                        .wait_timeout(jobs, deadline - now)
                        .expect("registry lock");
                    jobs = guard;
                }
            }
        }
    }

    fn update(&self, id: &str, f: impl FnOnce(&mut JobEntry)) {
        let mut jobs = self.jobs.lock().expect("registry lock");
        if let Some(entry) = jobs.get_mut(id) {
            f(entry);
        }
        drop(jobs);
        self.changed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frostlab_core::ScenarioSpec;

    fn matrix() -> MatrixSpec {
        MatrixSpec {
            scenarios: vec![ScenarioSpec::new("t", 1, "helsinki")],
            seed_start: 0,
            seeds: 2,
        }
    }

    #[test]
    fn job_id_is_whitespace_insensitive_and_stable() {
        let m = matrix();
        let id = job_id(&m).expect("hashes");
        assert_eq!(id.len(), 16);
        // Round-tripping through pretty JSON does not change the id.
        let reparsed = MatrixSpec::from_json(&m.to_json().expect("serializes")).expect("parses");
        assert_eq!(job_id(&reparsed).expect("hashes"), id);
        // A different matrix gets a different id.
        let mut other = matrix();
        other.seeds = 3;
        assert_ne!(job_id(&other).expect("hashes"), id);
    }

    #[test]
    fn submit_deduplicates_on_id() {
        let reg = JobRegistry::new();
        let m = matrix();
        assert_eq!(reg.submit("a", &m), SubmitOutcome::New);
        assert_eq!(reg.submit("a", &m), SubmitOutcome::Deduplicated);
        let entry = reg.get("a").expect("present");
        assert_eq!(entry.phase, JobPhase::Queued);
        assert_eq!(entry.jobs_total, 2);
        assert!(reg.get("b").is_none());
    }

    #[test]
    fn lifecycle_updates_are_visible_and_forgettable() {
        let reg = JobRegistry::new();
        reg.submit("a", &matrix());
        reg.mark_running("a");
        reg.record_campaign("a", false);
        reg.record_campaign("a", true);
        let e = reg.get("a").expect("present");
        assert_eq!(e.phase, JobPhase::Running);
        assert_eq!(e.jobs_done, 2);
        assert_eq!(e.cache_hits, 1);
        reg.mark_done(
            "a",
            Artifacts {
                summary_json: "{}".into(),
                ..Artifacts::default()
            },
        );
        assert_eq!(reg.get("a").expect("present").phase, JobPhase::Done);
        reg.forget("a");
        assert!(reg.get("a").is_none());
    }

    #[test]
    fn wait_terminal_returns_on_completion_and_on_timeout() {
        let reg = std::sync::Arc::new(JobRegistry::new());
        reg.submit("a", &matrix());
        // Timeout path: still queued after 10 ms.
        let e = reg
            .wait_terminal("a", Duration::from_millis(10))
            .expect("present");
        assert_eq!(e.phase, JobPhase::Queued);
        // Completion path: a thread finishes the job while we wait.
        let bg = {
            let reg = reg.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                reg.mark_failed("a", "boom".into());
            })
        };
        let e = reg
            .wait_terminal("a", Duration::from_secs(5))
            .expect("present");
        assert_eq!(e.phase, JobPhase::Failed);
        assert_eq!(e.error.as_deref(), Some("boom"));
        bg.join().expect("bg");
        // Unknown id.
        assert!(reg.wait_terminal("zz", Duration::from_millis(1)).is_none());
    }
}
