//! The daemon: listener, router, simulation worker pool, metrics.
//!
//! Threading model (the container has no async runtime, so concurrency
//! is plain threads — the ISSUE gates determinism of *results*, not the
//! reactor):
//!
//! - One **acceptor** thread owns the listening socket and spawns a
//!   short-lived handler thread per connection. Handlers are cheap: one
//!   request, one response, `Connection: close`; socket read/write
//!   timeouts bound how long a stalled peer can hold one.
//! - A fixed pool of **simulation workers** drains the
//!   [`AdmissionGate`]. All heavy work happens here, so HTTP handling
//!   stays responsive while campaigns run, and total simulation
//!   concurrency is exactly `sim_workers`.
//!
//! Backpressure: when the gate's queue is full, `POST /v1/scenarios`
//! sheds with `429` + `Retry-After` and the registry entry is rolled
//! back, so daemon memory stays bounded by `queue_capacity` plus the
//! result cache — never by client enthusiasm.
//!
//! Shutdown: [`Server::shutdown`] closes the gate (queued jobs drain,
//! new submissions shed), pokes the acceptor awake with a loop-back
//! connection, and joins every thread.

use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use frostlab_core::MatrixSpec;
use frostlab_trace::export::to_prometheus;
use frostlab_trace::MetricsRegistry;

use crate::api::{ErrorBody, HealthBody, JobStatusBody, SubmitResponse};
use crate::exec::{execute_matrix, ResultCache};
use crate::gate::AdmissionGate;
use crate::http::{read_request, HttpError, Request, Response};
use crate::registry::{job_id, JobEntry, JobRegistry, SubmitOutcome};

/// Longest `wait_s` long-poll honoured by `GET /v1/jobs/{id}`, seconds.
pub const MAX_WAIT_S: u64 = 30;

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub addr: String,
    /// Simulation worker threads draining the admission queue.
    pub sim_workers: usize,
    /// Admission queue capacity; submissions beyond it shed with 429.
    pub queue_capacity: usize,
    /// Largest accepted request body, bytes.
    pub max_body_bytes: usize,
    /// Socket read/write timeout per connection.
    pub io_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7878".to_string(),
            sim_workers: 2,
            queue_capacity: 16,
            max_body_bytes: 1024 * 1024,
            io_timeout: Duration::from_secs(40),
        }
    }
}

/// Everything the handler threads and workers share.
struct Shared {
    registry: JobRegistry,
    cache: ResultCache,
    gate: AdmissionGate,
    metrics: Mutex<MetricsRegistry>,
    max_body_bytes: usize,
    stopping: AtomicBool,
}

impl Shared {
    fn count(&self, name: &str) {
        self.metrics
            .lock()
            .expect("metrics lock")
            .counter_add(name, 1);
    }

    fn count_labeled(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        self.metrics
            .lock()
            .expect("metrics lock")
            .counter_add_labeled(name, labels, delta);
    }
}

/// A running `frostlabd` instance.
///
/// ```no_run
/// use frostlab_service::{Server, ServerConfig};
///
/// let server = Server::start(ServerConfig {
///     addr: "127.0.0.1:0".to_string(),
///     ..ServerConfig::default()
/// }).expect("bind");
/// println!("serving on http://{}", server.addr());
/// server.shutdown();
/// ```
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the acceptor and the simulation workers, and return.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            registry: JobRegistry::new(),
            cache: ResultCache::new(),
            gate: AdmissionGate::new(config.queue_capacity),
            metrics: Mutex::new(MetricsRegistry::new()),
            max_body_bytes: config.max_body_bytes,
            stopping: AtomicBool::new(false),
        });

        let workers = (0..config.sim_workers.max(1))
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("frostlabd-sim-{i}"))
                    .spawn(move || sim_worker(&shared))
                    .expect("spawn sim worker")
            })
            .collect();

        let acceptor = {
            let shared = shared.clone();
            let io_timeout = config.io_timeout;
            std::thread::Builder::new()
                .name("frostlabd-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared, io_timeout))
                .expect("spawn acceptor")
        };

        Ok(Server {
            shared,
            addr,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (useful with `addr: "127.0.0.1:0"`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Drain and stop: close the gate (queued jobs still run to
    /// completion, new submissions shed), wake the acceptor, join all
    /// threads.
    pub fn shutdown(mut self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
        self.shared.gate.close();
        // The acceptor blocks in `accept`; a loop-back connection wakes
        // it so it can observe `stopping` and exit.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, io_timeout: Duration) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return,
        };
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        let shared = shared.clone();
        // Handler threads are detached: each lives for exactly one
        // request/response exchange, bounded by the socket timeouts.
        let _ = std::thread::Builder::new()
            .name("frostlabd-conn".to_string())
            .spawn(move || handle_connection(stream, &shared, io_timeout));
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Shared, io_timeout: Duration) {
    let _ = stream.set_read_timeout(Some(io_timeout));
    let _ = stream.set_write_timeout(Some(io_timeout));
    let response = match read_request(&mut stream, shared.max_body_bytes) {
        Ok(Some(request)) => handle_request(shared, &request),
        Ok(None) => return, // peer connected and left; nothing to answer
        Err(HttpError::TooLarge { what, limit }) => {
            shared.count("http_rejects_total");
            error_response(
                413,
                "body-too-large",
                format!("{what} exceeds the {limit}-byte cap"),
            )
        }
        Err(HttpError::BadRequest(m)) => {
            shared.count("http_rejects_total");
            error_response(400, "bad-request", m)
        }
        Err(HttpError::Io(_)) => return, // peer is gone; no one to tell
    };
    shared.count_labeled(
        "http_responses_total",
        &[("status", &response.status.to_string())],
        1,
    );
    let _ = response.write_to(&mut stream);
}

/// Route one parsed request. Pure: no socket I/O, so the integration
/// tests can drive it through real connections and unit logic alike.
fn handle_request(shared: &Shared, request: &Request) -> Response {
    let (path, _) = request.path_and_query();
    let method = request.method.as_str();
    match (method, path) {
        ("GET", "/healthz") => {
            shared.count_labeled("http_requests_total", &[("route", "healthz")], 1);
            json_response(
                200,
                &HealthBody {
                    ok: true,
                    api: "v1".to_string(),
                },
            )
        }
        ("GET", "/metrics") => {
            shared.count_labeled("http_requests_total", &[("route", "metrics")], 1);
            metrics_response(shared)
        }
        ("POST", "/v1/scenarios") => {
            shared.count_labeled("http_requests_total", &[("route", "scenarios")], 1);
            submit(shared, request)
        }
        ("GET", p) if p.starts_with("/v1/jobs/") => {
            shared.count_labeled("http_requests_total", &[("route", "jobs")], 1);
            job_route(shared, request, &p["/v1/jobs/".len()..])
        }
        ("GET", "/v1/scenarios") | ("POST", "/healthz") | ("POST", "/metrics") => {
            error_response(405, "method-not-allowed", format!("{method} {path}"))
        }
        (_, p) if p == "/v1/scenarios" || p.starts_with("/v1/jobs/") => {
            error_response(405, "method-not-allowed", format!("{method} {path}"))
        }
        _ => error_response(404, "not-found", format!("no route for {method} {path}")),
    }
}

/// `POST /v1/scenarios`: parse, validate, register, admit.
fn submit(shared: &Shared, request: &Request) -> Response {
    let text = match std::str::from_utf8(&request.body) {
        Ok(t) => t,
        Err(_) => return error_response(400, "bad-json", "body is not utf-8"),
    };
    let matrix = match MatrixSpec::from_json(text) {
        Ok(m) => m,
        Err(e) => return error_response(400, "bad-json", format!("matrix parse failed: {e}")),
    };
    if let Err(e) = matrix.validate() {
        return error_response(400, "invalid-spec", e.to_string());
    }
    let id = match job_id(&matrix) {
        Ok(id) => id,
        Err(e) => return error_response(500, "internal", e.to_string()),
    };

    match shared.registry.submit(&id, &matrix) {
        SubmitOutcome::Deduplicated => {
            shared.count("submissions_deduplicated_total");
            let entry = shared.registry.get(&id).expect("just observed");
            json_response(
                200,
                &SubmitResponse {
                    job_id: id,
                    status: entry.phase,
                    jobs_total: entry.jobs_total,
                    deduplicated: true,
                },
            )
        }
        SubmitOutcome::New => match shared.gate.try_enqueue(&id) {
            Ok(()) => {
                shared.count("submissions_total");
                json_response(
                    202,
                    &SubmitResponse {
                        job_id: id,
                        status: crate::api::JobPhase::Queued,
                        jobs_total: matrix.jobs(),
                        deduplicated: false,
                    },
                )
            }
            Err(full) => {
                // Roll the registration back so a retry of the same
                // matrix starts clean instead of deduplicating against
                // a job that never ran.
                shared.registry.forget(&id);
                shared.count("submissions_shed_total");
                let mut body = ErrorBody::new(
                    "queue-full",
                    format!("admission queue is full; retry in {}s", full.retry_after_s),
                );
                body.retry_after_s = Some(full.retry_after_s);
                json_error(429, &body).with_header("retry-after", full.retry_after_s.to_string())
            }
        },
    }
}

/// `GET /v1/jobs/{id}` and the artifact sub-routes.
fn job_route(shared: &Shared, request: &Request, rest: &str) -> Response {
    let (id, artifact) = match rest.split_once('/') {
        Some((id, artifact)) => (id, Some(artifact)),
        None => (rest, None),
    };
    let entry = match lookup(shared, request, id, artifact.is_none()) {
        Some(entry) => entry,
        None => {
            return error_response(404, "unknown-job", format!("no job with id {id:?}"));
        }
    };
    match artifact {
        None => json_response(
            200,
            &JobStatusBody {
                job_id: id.to_string(),
                status: entry.phase,
                jobs_total: entry.jobs_total,
                jobs_done: entry.jobs_done,
                cache_hits: entry.cache_hits,
                error: entry.error.clone(),
            },
        ),
        Some(name) => artifact_route(&entry, id, name),
    }
}

/// Status polls honour `?wait_s=N` (clamped to [`MAX_WAIT_S`]) by
/// blocking on the registry condvar — cheap long-polling.
fn lookup(shared: &Shared, request: &Request, id: &str, allow_wait: bool) -> Option<JobEntry> {
    let wait_s = if allow_wait {
        request
            .query_param("wait_s")
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0)
            .min(MAX_WAIT_S)
    } else {
        0
    };
    if wait_s > 0 {
        shared
            .registry
            .wait_terminal(id, Duration::from_secs(wait_s))
    } else {
        shared.registry.get(id)
    }
}

fn artifact_route(entry: &JobEntry, id: &str, name: &str) -> Response {
    let artifacts = match (&entry.phase, &entry.artifacts) {
        (crate::api::JobPhase::Failed, _) => {
            return error_response(
                409,
                "job-failed",
                entry.error.clone().unwrap_or_else(|| "job failed".into()),
            );
        }
        (_, Some(a)) => a,
        (_, None) => {
            return error_response(
                409,
                "not-ready",
                format!(
                    "job {id} is {}; artifacts appear when it is done",
                    entry.phase.as_str()
                ),
            );
        }
    };
    match name {
        "summary" => Response::new(200, "application/json", artifacts.summary_json.as_bytes()),
        "trace.jsonl" => Response::new(
            200,
            "application/x-ndjson",
            artifacts.trace_jsonl.as_bytes(),
        ),
        "perfetto.json" => {
            Response::new(200, "application/json", artifacts.perfetto_json.as_bytes())
        }
        "alerts.json" => match &artifacts.alerts_json {
            Some(alerts) => Response::new(200, "application/json", alerts.as_bytes()),
            None => error_response(
                404,
                "no-alerts",
                "no scenario in this matrix armed observability",
            ),
        },
        other => error_response(404, "not-found", format!("unknown artifact {other:?}")),
    }
}

/// `GET /metrics`: the shared registry snapshot rendered as Prometheus
/// text, with live queue gauges stamped at scrape time.
fn metrics_response(shared: &Shared) -> Response {
    let mut metrics = shared.metrics.lock().expect("metrics lock");
    metrics.gauge_set("queue_depth", shared.gate.queue_depth() as f64);
    metrics.gauge_set("jobs_in_flight", shared.gate.in_flight() as f64);
    metrics.gauge_set("result_cache_entries", shared.cache.len() as f64);
    let text = to_prometheus(&metrics.snapshot());
    drop(metrics);
    Response::new(200, "text/plain; version=0.0.4", text.into_bytes())
}

/// Simulation worker: drain the gate until it closes.
fn sim_worker(shared: &Shared) {
    while let Some(id) = shared.gate.dequeue() {
        let Some(entry) = shared.registry.get(&id) else {
            // Submission was rolled back between enqueue and dequeue.
            shared.gate.finish();
            continue;
        };
        shared.registry.mark_running(&id);
        let outcome = execute_matrix(&entry.matrix, &shared.cache, &|cache_hit| {
            shared.registry.record_campaign(&id, cache_hit);
        });
        match outcome {
            Ok((artifacts, stats)) => {
                shared.registry.mark_done(&id, artifacts);
                shared.count("jobs_completed_total");
                shared.count_labeled("campaigns_total", &[("kind", "simulated")], stats.simulated);
                shared.count_labeled(
                    "campaigns_total",
                    &[("kind", "cache-hit")],
                    stats.cache_hits,
                );
            }
            Err(e) => {
                shared.registry.mark_failed(&id, e.to_string());
                shared.count("jobs_failed_total");
            }
        }
        shared.gate.finish();
    }
}

fn json_response(status: u16, body: &impl serde::Serialize) -> Response {
    match serde_json::to_string(body) {
        Ok(json) => Response::new(status, "application/json", json.into_bytes()),
        Err(e) => error_response(500, "internal", format!("serialization failed: {e}")),
    }
}

fn json_error(status: u16, body: &ErrorBody) -> Response {
    let json =
        serde_json::to_string(body).unwrap_or_else(|_| format!("{{\"error\":\"{}\"}}", body.error));
    Response::new(status, "application/json", json.into_bytes())
}

fn error_response(status: u16, code: &str, message: impl Into<String>) -> Response {
    json_error(status, &ErrorBody::new(code, message))
}
