//! End-to-end tests of the `frostlabd` HTTP surface: real sockets, real
//! simulations, byte-level artifact checks.
//!
//! The two headline behaviours the ISSUE gates live here:
//!
//! - **Determinism through the cache:** two identical submissions cost
//!   one simulation, and every byte served for either matches the
//!   in-process `run_matrix_sweep` reference.
//! - **Backpressure:** a saturated admission gate sheds with `429` +
//!   `Retry-After` while already-admitted jobs run to completion.

use std::time::Duration;

use frostlab_core::{MatrixSpec, ScenarioSpec};
use frostlab_ensemble::run_matrix_sweep;
use frostlab_service::client::{get, post_json, ClientResponse};
use frostlab_service::{Server, ServerConfig};
use frostlab_trace::export::validate_prometheus;

const TIMEOUT: Duration = Duration::from_secs(30);

fn start(sim_workers: usize, queue_capacity: usize) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        sim_workers,
        queue_capacity,
        ..ServerConfig::default()
    })
    .expect("bind test server")
}

fn matrix(name: &str, days: i64, seeds: u64) -> MatrixSpec {
    MatrixSpec {
        scenarios: vec![ScenarioSpec::new(name, days, "helsinki")],
        seed_start: 0,
        seeds,
    }
}

/// Extract a JSON string field without a typed parse — keeps the test
/// honest about what is actually on the wire.
fn json_str_field<'a>(body: &'a str, field: &str) -> Option<&'a str> {
    body.split(&format!("\"{field}\""))
        .nth(1)?
        .split('"')
        .nth(1)
}

fn submit(server: &Server, m: &MatrixSpec) -> (u16, String) {
    let body = m.to_json().expect("matrix serializes");
    let r = post_json(server.addr(), "/v1/scenarios", &body, TIMEOUT).expect("submit");
    (r.status, r.text().to_string())
}

fn wait_done(server: &Server, id: &str) -> ClientResponse {
    let r = get(server.addr(), &format!("/v1/jobs/{id}?wait_s=30"), TIMEOUT).expect("poll");
    assert_eq!(r.status, 200, "poll failed: {}", r.text());
    r
}

#[test]
fn identical_submissions_share_one_simulation_and_identical_bytes() {
    let server = start(2, 8);
    let m = matrix("api-dedup", 1, 2);

    // First submission: admitted and (eventually) done.
    let (status, body) = submit(&server, &m);
    assert_eq!(status, 202, "first submit: {body}");
    assert!(body.contains("\"deduplicated\":false"), "{body}");
    let id = json_str_field(&body, "job_id").expect("job_id").to_string();
    let done = wait_done(&server, &id);
    assert!(
        done.text().contains("\"status\":\"done\""),
        "{}",
        done.text()
    );

    // Second, byte-different but semantically identical submission
    // (pretty-printed vs whatever whitespace): deduplicates, 200.
    let (status2, body2) = submit(&server, &m);
    assert_eq!(status2, 200, "dedup submit: {body2}");
    assert!(body2.contains("\"deduplicated\":true"), "{body2}");
    assert_eq!(json_str_field(&body2, "job_id"), Some(id.as_str()));

    // Both submissions serve the same frozen bytes, and those bytes are
    // the in-process ensemble reference, byte for byte.
    let reference = format!(
        "{}\n",
        run_matrix_sweep(&m, 1)
            .expect("reference sweep")
            .invariant_json()
            .expect("reference serializes")
    );
    let summary = get(server.addr(), &format!("/v1/jobs/{id}/summary"), TIMEOUT).expect("summary");
    assert_eq!(summary.status, 200);
    assert_eq!(summary.text(), reference);
    let again = get(server.addr(), &format!("/v1/jobs/{id}/summary"), TIMEOUT).expect("summary");
    assert_eq!(again.text(), reference);

    // The trace artifacts exist and carry their format tags.
    let trace = get(
        server.addr(),
        &format!("/v1/jobs/{id}/trace.jsonl"),
        TIMEOUT,
    )
    .expect("trace");
    assert_eq!(trace.status, 200);
    assert!(trace.text().contains("frostlab-trace/v1"));
    let perfetto = get(
        server.addr(),
        &format!("/v1/jobs/{id}/perfetto.json"),
        TIMEOUT,
    )
    .expect("perfetto");
    assert_eq!(perfetto.status, 200);
    assert!(perfetto.text().contains("traceEvents"));

    // No observed scenario ⇒ the alerts artifact 404s with its code.
    let alerts = get(
        server.addr(),
        &format!("/v1/jobs/{id}/alerts.json"),
        TIMEOUT,
    )
    .expect("alerts");
    assert_eq!(alerts.status, 404);
    assert!(alerts.text().contains("no-alerts"));

    // An overlapping (superset-seed) matrix reuses cached campaigns:
    // its status must report cache hits without disturbing its bytes.
    let wider = matrix("api-dedup", 1, 3);
    let (status3, body3) = submit(&server, &wider);
    assert_eq!(status3, 202, "{body3}");
    let wid = json_str_field(&body3, "job_id")
        .expect("job_id")
        .to_string();
    let wdone = wait_done(&server, &wid);
    assert!(
        wdone.text().contains("\"status\":\"done\""),
        "{}",
        wdone.text()
    );
    assert!(
        !wdone.text().contains("\"cache_hits\":0"),
        "expected cache hits in {}",
        wdone.text()
    );
    let wref = format!(
        "{}\n",
        run_matrix_sweep(&wider, 1)
            .expect("reference sweep")
            .invariant_json()
            .expect("reference serializes")
    );
    let wsummary =
        get(server.addr(), &format!("/v1/jobs/{wid}/summary"), TIMEOUT).expect("summary");
    assert_eq!(wsummary.text(), wref);

    server.shutdown();
}

#[test]
fn saturated_gate_sheds_with_429_while_admitted_jobs_complete() {
    // One worker, one queue slot: the third distinct submission sheds.
    let server = start(1, 1);
    let first = matrix("api-sat-a", 2, 6);
    let second = matrix("api-sat-b", 2, 6);
    let third = matrix("api-sat-c", 1, 1);

    let (s1, b1) = submit(&server, &first);
    assert_eq!(s1, 202, "{b1}");
    let id1 = json_str_field(&b1, "job_id").expect("job_id").to_string();
    let (s2, b2) = submit(&server, &second);
    assert_eq!(s2, 202, "{b2}");
    let id2 = json_str_field(&b2, "job_id").expect("job_id").to_string();

    // Gate full (1 running or queued + 1 queued): shed with the contract.
    let body3 = third.to_json().expect("serializes");
    let shed = post_json(server.addr(), "/v1/scenarios", &body3, TIMEOUT).expect("shed submit");
    assert_eq!(shed.status, 429, "expected shed: {}", shed.text());
    let retry_after: u64 = shed
        .header("retry-after")
        .expect("Retry-After header on 429")
        .parse()
        .expect("Retry-After is seconds");
    assert!((1..=60).contains(&retry_after));
    assert!(
        shed.text().contains("\"error\":\"queue-full\""),
        "{}",
        shed.text()
    );
    assert!(shed.text().contains("\"retry_after_s\""), "{}", shed.text());

    // The in-flight and queued jobs still complete, untouched by the shed.
    for id in [&id1, &id2] {
        let done = wait_done(&server, id);
        assert!(
            done.text().contains("\"status\":\"done\""),
            "job {id}: {}",
            done.text()
        );
    }

    // With the gate drained, the previously-shed matrix is admittable.
    let (s3, b3) = submit(&server, &third);
    assert_eq!(s3, 202, "post-drain submit: {b3}");

    // And the shed earlier did not leave a phantom registry entry: the
    // fresh submission was New, not deduplicated.
    assert!(b3.contains("\"deduplicated\":false"), "{b3}");

    server.shutdown();
}

#[test]
fn observed_matrix_serves_alerts_and_failed_poison_reports_409() {
    let server = start(2, 8);

    // Observed matrix: alerts.json is servable.
    let mut spec = ScenarioSpec::new("api-obs", 1, "helsinki");
    spec.observe = true;
    let observed = MatrixSpec {
        scenarios: vec![spec],
        seed_start: 0,
        seeds: 2,
    };
    let (status, body) = submit(&server, &observed);
    assert_eq!(status, 202, "{body}");
    let id = json_str_field(&body, "job_id").expect("job_id").to_string();
    wait_done(&server, &id);
    let alerts = get(
        server.addr(),
        &format!("/v1/jobs/{id}/alerts.json"),
        TIMEOUT,
    )
    .expect("alerts");
    assert_eq!(alerts.status, 200, "{}", alerts.text());
    assert!(alerts.text().contains("frostlab-ensemble-alerts/v1"));

    // Poison matrix: the job fails terminally, status carries the error,
    // artifacts answer 409 job-failed.
    let mut poison = ScenarioSpec::new("api-poison", 1, "helsinki");
    poison.poison = true;
    let poisoned = MatrixSpec {
        scenarios: vec![poison],
        seed_start: 0,
        seeds: 1,
    };
    let (status, body) = submit(&server, &poisoned);
    assert_eq!(status, 202, "{body}");
    let pid = json_str_field(&body, "job_id").expect("job_id").to_string();
    let failed = wait_done(&server, &pid);
    assert!(
        failed.text().contains("\"status\":\"failed\""),
        "{}",
        failed.text()
    );
    assert!(failed.text().contains("poison"), "{}", failed.text());
    let artifact = get(server.addr(), &format!("/v1/jobs/{pid}/summary"), TIMEOUT).expect("get");
    assert_eq!(artifact.status, 409);
    assert!(
        artifact.text().contains("job-failed"),
        "{}",
        artifact.text()
    );

    server.shutdown();
}

#[test]
fn error_paths_are_typed_and_metrics_scrape_as_prometheus() {
    let server = start(1, 4);

    // Liveness.
    let health = get(server.addr(), "/healthz", TIMEOUT).expect("healthz");
    assert_eq!(health.status, 200);
    assert!(health.text().contains("\"ok\":true"));

    // Malformed JSON body.
    let bad = post_json(server.addr(), "/v1/scenarios", "{nope", TIMEOUT).expect("bad json");
    assert_eq!(bad.status, 400);
    assert!(bad.text().contains("bad-json"), "{}", bad.text());

    // Well-formed JSON, invalid spec.
    let invalid = matrix("api-bad-climate", 1, 1);
    let mut invalid = invalid;
    invalid.scenarios[0].climate = "atlantis".to_string();
    let body = invalid.to_json().expect("serializes");
    let r = post_json(server.addr(), "/v1/scenarios", &body, TIMEOUT).expect("invalid spec");
    assert_eq!(r.status, 400);
    assert!(r.text().contains("invalid-spec"), "{}", r.text());

    // Unknown job, unknown artifact, unknown route, wrong method.
    let r = get(server.addr(), "/v1/jobs/doesnotexist", TIMEOUT).expect("unknown job");
    assert_eq!(r.status, 404);
    assert!(r.text().contains("unknown-job"), "{}", r.text());
    let r = get(server.addr(), "/v1/nowhere", TIMEOUT).expect("unknown route");
    assert_eq!(r.status, 404);
    assert!(r.text().contains("not-found"), "{}", r.text());
    let r = post_json(server.addr(), "/healthz", "{}", TIMEOUT).expect("wrong method");
    assert_eq!(r.status, 405);
    assert!(r.text().contains("method-not-allowed"), "{}", r.text());

    // The metrics scrape is valid Prometheus exposition and carries the
    // server-level counters the handlers ticked above.
    let metrics = get(server.addr(), "/metrics", TIMEOUT).expect("metrics");
    assert_eq!(metrics.status, 200);
    assert_eq!(
        metrics.header("content-type"),
        Some("text/plain; version=0.0.4")
    );
    let text = metrics.text();
    let lint = validate_prometheus(text);
    assert!(lint.is_empty(), "invalid exposition: {lint:?}\n{text}");
    assert!(text.contains("frostlab_http_requests_total"), "{text}");
    assert!(text.contains("frostlab_http_responses_total"), "{text}");
    assert!(text.contains("frostlab_queue_depth"), "{text}");

    server.shutdown();
}

#[test]
fn oversized_bodies_are_rejected_with_413() {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        sim_workers: 1,
        queue_capacity: 1,
        max_body_bytes: 64,
        ..ServerConfig::default()
    })
    .expect("bind test server");
    let big = matrix("a-scenario-name-well-past-sixty-four-bytes-of-json", 1, 1)
        .to_json()
        .expect("serializes");
    assert!(big.len() > 64);
    let r = post_json(server.addr(), "/v1/scenarios", &big, TIMEOUT).expect("oversized");
    assert_eq!(r.status, 413, "{}", r.text());
    assert!(r.text().contains("body-too-large"), "{}", r.text());
    server.shutdown();
}
