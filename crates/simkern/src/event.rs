//! Deterministic event queue.
//!
//! [`EventQueue`] is a time-ordered priority queue with **stable FIFO
//! tie-breaking**: two events scheduled for the same instant pop in the order
//! they were scheduled. Determinism of the whole platform hinges on this —
//! `std::collections::BinaryHeap` alone does not guarantee any order among
//! equal keys, so each entry carries a monotonically increasing sequence
//! number.
//!
//! The queue is generic over the event payload; the orchestrator in
//! `frostlab-core` defines a single `enum` of everything that can happen in
//! the experiment and drives a `while let Some((t, ev)) = q.pop()` loop.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

// Order entries so that the *earliest* time (and among equal times the
// *smallest* sequence number) is the maximum of the max-heap.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

/// A deterministic, time-ordered event queue.
///
/// Tracks the current simulation time (`now`), which advances monotonically
/// as events are popped. Scheduling an event in the past is a logic error and
/// panics: silent reordering is exactly the class of bug a deterministic
/// simulator must refuse to paper over.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with `now` at the experiment epoch.
    pub fn new() -> Self {
        Self::starting_at(SimTime::ZERO)
    }

    /// Create an empty queue with `now` at the given instant.
    pub fn starting_at(start: SimTime) -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: start,
        }
    }

    /// Current simulation time: the timestamp of the most recently popped
    /// event (or the start time if nothing has been popped yet).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than [`EventQueue::now`].
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "attempt to schedule an event at {at:?} before now={:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Schedule `payload` after a relative delay from `now`.
    ///
    /// # Panics
    /// Panics if the delay is negative.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) {
        assert!(!delay.is_negative(), "negative scheduling delay");
        self.schedule(self.now + delay, payload);
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the next event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        Some((entry.at, entry.payload))
    }

    /// Pop the next event only if it is scheduled at or before `deadline`.
    ///
    /// `now` advances to the event time on success and is left untouched on
    /// `None`, so a caller can interleave event processing with fixed-step
    /// activities (e.g. a thermal integrator) without overshooting.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? <= deadline {
            self.pop()
        } else {
            None
        }
    }

    /// Drop all pending events (e.g. when ending a phase early).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(30), "c");
        q.schedule(SimTime::from_secs(10), "a");
        q.schedule(SimTime::from_secs(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn fifo_among_simultaneous_events() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_secs(42), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        q.schedule(SimTime::from_secs(9), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(9));
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), ());
        q.pop();
        q.schedule(SimTime::from_secs(5), ());
    }

    #[test]
    fn schedule_in_relative() {
        let mut q = EventQueue::starting_at(SimTime::from_secs(100));
        q.schedule_in(SimDuration::minutes(2), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(220)));
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "early");
        q.schedule(SimTime::from_secs(100), "late");
        assert_eq!(
            q.pop_until(SimTime::from_secs(50)).map(|(_, e)| e),
            Some("early")
        );
        assert_eq!(q.pop_until(SimTime::from_secs(50)), None);
        // now unchanged by the failed pop
        assert_eq!(q.now(), SimTime::from_secs(10));
        assert_eq!(
            q.pop_until(SimTime::from_secs(100)).map(|(_, e)| e),
            Some("late")
        );
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        q.schedule(SimTime::from_secs(2), ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), 1);
        q.schedule(SimTime::from_secs(30), 3);
        let (t, e) = q.pop().unwrap();
        assert_eq!((t.as_secs(), e), (10, 1));
        q.schedule(SimTime::from_secs(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, [2, 3]);
    }
}
