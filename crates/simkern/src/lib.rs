//! # frostlab-simkern
//!
//! Deterministic discrete-event simulation kernel for the frostlab workspace.
//!
//! The kernel is deliberately small and synchronous, in the spirit of
//! event-driven network stacks such as smoltcp: there is no async runtime, no
//! background threads, and no hidden allocation on the hot path. A simulation
//! is a loop that pops timestamped events from an [`EventQueue`] and lets the
//! caller dispatch them against its own world state. This sidesteps the
//! callback-vs-borrow-checker fight entirely and keeps execution order
//! trivially auditable.
//!
//! Three pillars:
//!
//! * [`time`] — simulation time as integer seconds since the experiment epoch
//!   (2010-01-01 00:00 local), with full civil-calendar conversion so scenario
//!   code can speak in the paper's own dates ("host #15 failed Mar 7, 04:40").
//! * [`rng`] — a self-contained xoshiro256++ PRNG with SplitMix64 seeding and
//!   labelled stream derivation, plus the distribution samplers the substrates
//!   need (normal, exponential, Weibull, lognormal, Poisson). Implemented here
//!   rather than via the `rand` crate so that every figure in EXPERIMENTS.md
//!   stays bit-for-bit reproducible regardless of dependency versions.
//! * [`event`] — a deterministic priority queue with stable FIFO tie-breaking
//!   for simultaneous events.
//!
//! ## Example
//!
//! ```
//! use frostlab_simkern::event::EventQueue;
//! use frostlab_simkern::time::{SimTime, SimDuration};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Tick, Done }
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::minutes(10), Ev::Tick);
//! q.schedule(SimTime::ZERO + SimDuration::hours(1), Ev::Done);
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, Ev::Tick);
//! assert_eq!(t.as_secs(), 600);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod rng;
pub mod time;

pub use event::EventQueue;
pub use rng::Rng;
pub use time::{Date, DateTime, SimDuration, SimTime, TimeError};
