//! Self-contained deterministic random number generation.
//!
//! The experiment platform derives **all** stochastic behaviour — weather,
//! fault draws, workload jitter, sensor noise — from a single `u64` scenario
//! seed. To guarantee that the reproduced figures are stable across compiler
//! and dependency upgrades, the generator is implemented here from first
//! principles rather than taken from the `rand` crate:
//!
//! * [`SplitMix64`] for seed expansion (Steele, Lea & Flood 2014);
//! * [`Rng`], a xoshiro256++ generator (Blackman & Vigna 2019) for the
//!   simulation streams;
//! * labelled sub-stream derivation via [`Rng::derive`], so each component
//!   gets an independent stream addressed by a human-readable label
//!   (`"climate/synoptic"`, `"host/15/faults"`, …). Adding a consumer never
//!   perturbs the draws seen by existing consumers.
//!
//! Distribution samplers cover everything the substrates need: uniform,
//! Bernoulli, normal (polar Box–Muller), exponential, Weibull, lognormal and
//! Poisson.

/// SplitMix64: a tiny, high-quality 64-bit mixer used for seeding.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a new mixer from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// FNV-1a hash of a label, used to bind sub-stream derivation to names.
fn fnv1a(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// Deterministic xoshiro256++ pseudo-random number generator.
///
/// Not cryptographically secure — this is a simulation PRNG. Period 2²⁵⁶−1,
/// passes BigCrush; plenty for Monte-Carlo work.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
    /// Seed-time identity used for sub-stream derivation; never mutated by
    /// draws, so [`Rng::derive`] is independent of how much the parent has
    /// been used.
    identity: u64,
    /// Cached second normal variate from the polar method.
    gauss_cache: Option<f64>,
}

impl Rng {
    /// Create a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // xoshiro must not be seeded with all zeros; SplitMix64 cannot
        // produce four consecutive zeros, but be defensive anyway.
        if s.iter().all(|&x| x == 0) {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Rng {
            s,
            identity: sm.next_u64(),
            gauss_cache: None,
        }
    }

    /// Derive an independent sub-stream addressed by `label`.
    ///
    /// Derivation mixes the parent's *seed-time* state hash with the label
    /// hash, so the derived stream does not depend on how many numbers the
    /// parent has drawn — only on the parent's identity and the label.
    pub fn derive(&self, label: &str) -> Rng {
        Rng::new(self.identity ^ fnv1a(label))
    }

    /// Next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[0, 1)` guaranteed to be strictly positive —
    /// convenient for `ln()` transforms.
    fn f64_open(&mut self) -> f64 {
        loop {
            let x = self.f64();
            if x > 0.0 {
                return x;
            }
        }
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Uniform `u64` in `[0, n)` using Lemire's rejection method.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire's nearly-divisionless method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range");
        let span = (hi - lo) as u64 + 1;
        lo + self.below(span) as i64
    }

    /// Bernoulli draw: true with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Standard normal variate via the polar (Marsaglia) method.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.gauss_cache.take() {
            return z;
        }
        loop {
            let u = 2.0 * self.f64() - 1.0;
            let v = 2.0 * self.f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.gauss_cache = Some(v * factor);
                return u * factor;
            }
        }
    }

    /// Normal variate with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Exponential variate with the given rate `lambda` (mean `1/lambda`).
    ///
    /// # Panics
    /// Panics if `lambda <= 0`.
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "exponential rate must be positive");
        -self.f64_open().ln() / lambda
    }

    /// Weibull variate with scale `lambda` and shape `k` (inverse-CDF).
    pub fn weibull(&mut self, scale: f64, shape: f64) -> f64 {
        assert!(
            scale > 0.0 && shape > 0.0,
            "weibull parameters must be positive"
        );
        scale * (-self.f64_open().ln()).powf(1.0 / shape)
    }

    /// Lognormal variate: `exp(N(mu, sigma))`.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Poisson variate with mean `lambda`.
    ///
    /// Knuth's product method for small `lambda`; normal approximation with
    /// continuity correction above 30 (adequate for simulation purposes).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(lambda >= 0.0, "poisson mean must be non-negative");
        if lambda == 0.0 {
            return 0;
        }
        if lambda < 30.0 {
            let limit = (-lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= self.f64();
                if p <= limit {
                    return k;
                }
                k += 1;
            }
        } else {
            let x = self.normal(lambda, lambda.sqrt()) + 0.5;
            if x < 0.0 {
                0
            } else {
                x as u64
            }
        }
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Choose a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "choose from empty slice");
        &xs[self.below(xs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mean_var(rng: &mut Rng, n: usize, mut f: impl FnMut(&mut Rng) -> f64) -> (f64, f64) {
        let xs: Vec<f64> = (0..n).map(|_| f(rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
        (mean, var)
    }

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 1234567 from the public-domain C code.
        let mut sm = SplitMix64::new(0);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Determinism: same seed, same sequence.
        let mut sm2 = SplitMix64::new(0);
        assert_eq!(sm2.next_u64(), a);
        assert_eq!(sm2.next_u64(), b);
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derive_is_stable_and_label_sensitive() {
        let root = Rng::new(7);
        let mut a1 = root.derive("climate/synoptic");
        let mut a2 = root.derive("climate/synoptic");
        let mut b = root.derive("climate/diurnal");
        let va1: Vec<u64> = (0..16).map(|_| a1.next_u64()).collect();
        let va2: Vec<u64> = (0..16).map(|_| a2.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(va1, va2);
        assert_ne!(va1, vb);
    }

    #[test]
    fn derive_independent_of_parent_draws() {
        let mut parent = Rng::new(99);
        let before = parent.derive("x");
        let _ = parent.next_u64();
        let _ = parent.next_u64();
        let after = parent.derive("x");
        let mut b = before.clone();
        let mut a = after.clone();
        for _ in 0..8 {
            assert_eq!(b.next_u64(), a.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::new(5);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut rng = Rng::new(8);
        let mut counts = [0u32; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[rng.below(7) as usize] += 1;
        }
        for c in counts {
            let expect = n as f64 / 7.0;
            assert!(
                (f64::from(c) - expect).abs() < 5.0 * expect.sqrt(),
                "count {c}"
            );
        }
    }

    #[test]
    fn range_i64_inclusive_bounds() {
        let mut rng = Rng::new(3);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let x = rng.range_i64(-2, 2);
            assert!((-2..=2).contains(&x));
            saw_lo |= x == -2;
            saw_hi |= x == 2;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::new(11);
        let (mean, var) = sample_mean_var(&mut rng, 100_000, |r| r.normal(3.0, 2.0));
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn exponential_moments() {
        let mut rng = Rng::new(12);
        let (mean, var) = sample_mean_var(&mut rng, 100_000, |r| r.exponential(0.5));
        assert!((mean - 2.0).abs() < 0.06, "mean {mean}");
        assert!((var - 4.0).abs() < 0.35, "var {var}");
    }

    #[test]
    fn weibull_mean_shape_one_is_exponential() {
        let mut rng = Rng::new(13);
        let (mean, _) = sample_mean_var(&mut rng, 100_000, |r| r.weibull(3.0, 1.0));
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn weibull_shape_two_mean() {
        // Mean of Weibull(scale, k=2) is scale * Gamma(1.5) = scale * sqrt(pi)/2.
        let mut rng = Rng::new(14);
        let (mean, _) = sample_mean_var(&mut rng, 100_000, |r| r.weibull(2.0, 2.0));
        let expect = 2.0 * (std::f64::consts::PI).sqrt() / 2.0;
        assert!((mean - expect).abs() < 0.05, "mean {mean} expect {expect}");
    }

    #[test]
    fn poisson_small_lambda_moments() {
        let mut rng = Rng::new(15);
        let (mean, var) = sample_mean_var(&mut rng, 100_000, |r| r.poisson(4.0) as f64);
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn poisson_large_lambda_moments() {
        let mut rng = Rng::new(16);
        let (mean, var) = sample_mean_var(&mut rng, 100_000, |r| r.poisson(100.0) as f64);
        assert!((mean - 100.0).abs() < 1.0, "mean {mean}");
        assert!((var - 100.0).abs() < 6.0, "var {var}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::new(17);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn chance_probability() {
        let mut rng = Rng::new(18);
        let hits = (0..100_000).filter(|_| rng.chance(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::new(19);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..100).collect::<Vec<_>>(),
            "astronomically unlikely identity"
        );
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = Rng::new(20);
        let xs = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[(*rng.choose(&xs) - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn lognormal_median() {
        let mut rng = Rng::new(21);
        let mut xs: Vec<f64> = (0..50_001).map(|_| rng.lognormal(1.0, 0.5)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[25_000];
        assert!(
            (median - std::f64::consts::E).abs() < 0.1,
            "median {median}"
        );
    }
}
