//! Simulation time and civil-calendar arithmetic.
//!
//! Simulation time is an integer number of seconds since the **experiment
//! epoch**, defined as 2010-01-01 00:00:00 in local (Helsinki) wall-clock
//! time. Integer seconds are exact, cheap to order, and fine-grained enough
//! for every process in the study (the fastest cadence is the 10-minute
//! synthetic-load cycle; the weather model is sampled minutely).
//!
//! Calendar conversions use the proleptic Gregorian "days from civil"
//! algorithm, so scenario code can express the paper's own dates directly:
//!
//! ```
//! use frostlab_simkern::time::{DateTime, SimTime};
//! let host15_failure = DateTime::new(2010, 3, 7, 4, 40, 0).unwrap().to_sim_time();
//! assert_eq!(SimTime::from_ymd_hms(2010, 3, 7, 4, 40, 0), host15_failure);
//! assert_eq!(host15_failure.datetime().to_string(), "2010-03-07 04:40:00");
//! ```

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A calendar field combination that names no real instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeError {
    /// Month or day-of-month out of range for the given year.
    InvalidDate {
        /// Calendar year as given.
        year: i32,
        /// Month as given (valid: 1–12).
        month: u32,
        /// Day of month as given (valid: 1–`days_in_month`).
        day: u32,
    },
    /// Hour, minute or second out of range.
    InvalidTime {
        /// Hour as given (valid: 0–23).
        hour: u32,
        /// Minute as given (valid: 0–59).
        min: u32,
        /// Second as given (valid: 0–59).
        sec: u32,
    },
}

impl fmt::Display for TimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TimeError::InvalidDate { year, month, day } => {
                write!(f, "invalid calendar date {year:04}-{month:02}-{day:02}")
            }
            TimeError::InvalidTime { hour, min, sec } => {
                write!(f, "invalid time of day {hour:02}:{min:02}:{sec:02}")
            }
        }
    }
}

impl std::error::Error for TimeError {}

/// Seconds since 2010-01-01 00:00:00 local time (the experiment epoch).
///
/// The representation is signed so that times slightly before the epoch (for
/// example weather-model spin-up in late December 2009) remain expressible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(i64);

/// A span between two [`SimTime`]s, in seconds. May be negative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(i64);

/// The year of the experiment epoch.
pub const EPOCH_YEAR: i32 = 2010;

impl SimTime {
    /// The experiment epoch: 2010-01-01 00:00:00.
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable instant; useful as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(i64::MAX);

    /// Construct from raw seconds since the epoch.
    pub const fn from_secs(secs: i64) -> Self {
        SimTime(secs)
    }

    /// Construct from a civil date and time of day.
    ///
    /// # Panics
    /// Panics if the date or time is invalid — convenient for literals in
    /// scenario code; use [`SimTime::try_from_ymd_hms`] when the fields
    /// come from data.
    pub fn from_ymd_hms(year: i32, month: u32, day: u32, hour: u32, min: u32, sec: u32) -> Self {
        Self::try_from_ymd_hms(year, month, day, hour, min, sec).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`SimTime::from_ymd_hms`]: reports *which* field
    /// combination was invalid instead of panicking.
    pub fn try_from_ymd_hms(
        year: i32,
        month: u32,
        day: u32,
        hour: u32,
        min: u32,
        sec: u32,
    ) -> Result<Self, TimeError> {
        DateTime::try_new(year, month, day, hour, min, sec).map(DateTime::to_sim_time)
    }

    /// Construct from a civil date at midnight.
    ///
    /// # Panics
    /// Panics if the date is invalid (see [`SimTime::try_from_date`]).
    pub fn from_date(year: i32, month: u32, day: u32) -> Self {
        Self::from_ymd_hms(year, month, day, 0, 0, 0)
    }

    /// Fallible [`SimTime::from_date`].
    pub fn try_from_date(year: i32, month: u32, day: u32) -> Result<Self, TimeError> {
        Self::try_from_ymd_hms(year, month, day, 0, 0, 0)
    }

    /// Raw seconds since the epoch.
    pub const fn as_secs(self) -> i64 {
        self.0
    }

    /// Fractional days since the epoch (useful for plotting axes).
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / 86_400.0
    }

    /// Seconds elapsed since local midnight, in `0..86_400`.
    pub fn seconds_of_day(self) -> u32 {
        self.0.rem_euclid(86_400) as u32
    }

    /// Hour of day as a fraction, in `0.0..24.0`.
    pub fn hour_of_day_f64(self) -> f64 {
        self.seconds_of_day() as f64 / 3_600.0
    }

    /// The civil calendar date of this instant.
    pub fn date(self) -> Date {
        let days = self.0.div_euclid(86_400);
        Date::from_days_since_epoch(days)
    }

    /// The full civil calendar date-time of this instant.
    pub fn datetime(self) -> DateTime {
        let sod = self.seconds_of_day();
        DateTime {
            date: self.date(),
            hour: sod / 3_600,
            min: (sod / 60) % 60,
            sec: sod % 60,
        }
    }

    /// Day of year, 1-based (Jan 1 = 1).
    pub fn day_of_year(self) -> u32 {
        self.date().day_of_year()
    }

    /// Saturating duration since `earlier`; zero if `earlier` is later.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0).max(0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from seconds.
    pub const fn secs(s: i64) -> Self {
        SimDuration(s)
    }

    /// Construct from minutes.
    pub const fn minutes(m: i64) -> Self {
        SimDuration(m * 60)
    }

    /// Construct from hours.
    pub const fn hours(h: i64) -> Self {
        SimDuration(h * 3_600)
    }

    /// Construct from days.
    pub const fn days(d: i64) -> Self {
        SimDuration(d * 86_400)
    }

    /// Construct from fractional hours, rounding to the nearest second.
    pub fn hours_f64(h: f64) -> Self {
        SimDuration((h * 3_600.0).round() as i64)
    }

    /// Raw seconds.
    pub const fn as_secs(self) -> i64 {
        self.0
    }

    /// Duration expressed as fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600.0
    }

    /// Duration expressed as fractional days.
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / 86_400.0
    }

    /// True if the duration is negative.
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign<SimDuration> for SimTime {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.datetime())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.0.abs();
        let sign = if self.0 < 0 { "-" } else { "" };
        let (d, rem) = (total / 86_400, total % 86_400);
        let (h, rem) = (rem / 3_600, rem % 3_600);
        let (m, s) = (rem / 60, rem % 60);
        if d > 0 {
            write!(f, "{sign}{d}d {h:02}:{m:02}:{s:02}")
        } else {
            write!(f, "{sign}{h:02}:{m:02}:{s:02}")
        }
    }
}

/// A civil (proleptic Gregorian) calendar date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    /// Calendar year, e.g. 2010.
    pub year: i32,
    /// Month 1–12.
    pub month: u32,
    /// Day of month 1–31.
    pub day: u32,
}

/// A civil calendar date plus a time of day.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DateTime {
    /// The calendar date.
    pub date: Date,
    /// Hour 0–23.
    pub hour: u32,
    /// Minute 0–59.
    pub min: u32,
    /// Second 0–59.
    pub sec: u32,
}

/// Month names for display, January first.
pub const MONTH_ABBREV: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

/// Weekday names for display, Monday first (ISO order).
pub const WEEKDAY_ABBREV: [&str; 7] = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"];

/// True if `year` is a leap year in the Gregorian calendar.
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Number of days in the given month of the given year.
pub fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Days from 1970-01-01 to `y-m-d` (Howard Hinnant's `days_from_civil`).
fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y } as i64;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = m as i64;
    let d = d as i64;
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`] (Hinnant's `civil_from_days`).
fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

/// Days from the experiment epoch (2010-01-01) to 1970-01-01's offset.
fn epoch_offset_days() -> i64 {
    days_from_civil(EPOCH_YEAR, 1, 1)
}

impl Date {
    /// Construct a date, validating month and day ranges.
    pub fn new(year: i32, month: u32, day: u32) -> Option<Date> {
        Date::try_new(year, month, day).ok()
    }

    /// Construct a date, reporting the offending fields on failure.
    pub fn try_new(year: i32, month: u32, day: u32) -> Result<Date, TimeError> {
        if !(1..=12).contains(&month) || day == 0 || day > days_in_month(year, month) {
            return Err(TimeError::InvalidDate { year, month, day });
        }
        Ok(Date { year, month, day })
    }

    /// Date from whole days since the experiment epoch.
    pub fn from_days_since_epoch(days: i64) -> Date {
        let (year, month, day) = civil_from_days(days + epoch_offset_days());
        Date { year, month, day }
    }

    /// Whole days since the experiment epoch (negative before 2010).
    pub fn days_since_epoch(self) -> i64 {
        days_from_civil(self.year, self.month, self.day) - epoch_offset_days()
    }

    /// Midnight at the start of this date.
    pub fn to_sim_time(self) -> SimTime {
        SimTime(self.days_since_epoch() * 86_400)
    }

    /// Day of year, 1-based.
    pub fn day_of_year(self) -> u32 {
        // Jan 1 exists in every year, so go straight to the civil-day
        // arithmetic rather than through the validating constructor.
        (days_from_civil(self.year, self.month, self.day) - days_from_civil(self.year, 1, 1)) as u32
            + 1
    }

    /// ISO weekday index, 0 = Monday … 6 = Sunday.
    pub fn weekday_index(self) -> u32 {
        // 1970-01-01 was a Thursday (index 3 in Monday-first order).
        (days_from_civil(self.year, self.month, self.day) + 3).rem_euclid(7) as u32
    }

    /// Three-letter weekday name ("Mon", …).
    pub fn weekday(self) -> &'static str {
        WEEKDAY_ABBREV[self.weekday_index() as usize]
    }

    /// Short label used in figures, e.g. "Mar 07".
    pub fn short_label(self) -> String {
        format!(
            "{} {:02}",
            MONTH_ABBREV[(self.month - 1) as usize],
            self.day
        )
    }

    /// The following calendar day.
    pub fn succ(self) -> Date {
        Date::from_days_since_epoch(self.days_since_epoch() + 1)
    }
}

impl DateTime {
    /// Construct a date-time, validating all fields.
    pub fn new(year: i32, month: u32, day: u32, hour: u32, min: u32, sec: u32) -> Option<DateTime> {
        DateTime::try_new(year, month, day, hour, min, sec).ok()
    }

    /// Construct a date-time, reporting the offending fields on failure.
    pub fn try_new(
        year: i32,
        month: u32,
        day: u32,
        hour: u32,
        min: u32,
        sec: u32,
    ) -> Result<DateTime, TimeError> {
        if hour >= 24 || min >= 60 || sec >= 60 {
            return Err(TimeError::InvalidTime { hour, min, sec });
        }
        Ok(DateTime {
            date: Date::try_new(year, month, day)?,
            hour,
            min,
            sec,
        })
    }

    /// Convert to simulation time.
    pub fn to_sim_time(self) -> SimTime {
        self.date.to_sim_time()
            + SimDuration::secs(
                i64::from(self.hour) * 3_600 + i64::from(self.min) * 60 + i64::from(self.sec),
            )
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

impl fmt::Display for DateTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {:02}:{:02}:{:02}",
            self.date, self.hour, self.min, self.sec
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_jan_1_2010() -> Result<(), TimeError> {
        let d = SimTime::ZERO.date();
        assert_eq!(d, Date::try_new(2010, 1, 1)?);
        assert_eq!(d.weekday(), "Fri"); // 2010-01-01 was a Friday.
        Ok(())
    }

    #[test]
    fn roundtrip_key_paper_dates() -> Result<(), TimeError> {
        // Every date mentioned in the paper.
        let cases = [
            (2010, 2, 12, "Fri"), // prototype start
            (2010, 2, 15, "Mon"), // prototype end
            (2010, 2, 19, "Fri"), // normal phase start
            (2010, 3, 7, "Sun"),  // host #15 first failure (Saturday per paper; see note)
            (2010, 3, 13, "Sat"), // last host installed
            (2010, 3, 17, "Wed"), // host #15 second failure
            (2010, 3, 26, "Fri"), // last Fig. 2 tick
        ];
        for (y, m, d, _wd) in cases {
            let date = Date::try_new(y, m, d)?;
            assert_eq!(Date::from_days_since_epoch(date.days_since_epoch()), date);
        }
        // Paper says "Saturday, March 7th"; 2010-03-07 was actually a Sunday.
        // We keep the calendar honest and note the discrepancy in EXPERIMENTS.md.
        assert_eq!(Date::try_new(2010, 3, 7)?.weekday(), "Sun");
        assert_eq!(Date::try_new(2010, 3, 17)?.weekday(), "Wed");
        Ok(())
    }

    #[test]
    fn datetime_roundtrip_exhaustive_day() -> Result<(), TimeError> {
        for hour in [0u32, 4, 12, 23] {
            for min in [0u32, 40, 59] {
                let dt = DateTime::try_new(2010, 3, 7, hour, min, 30)?;
                assert_eq!(dt.to_sim_time().datetime(), dt);
            }
        }
        Ok(())
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2008));
        assert!(!is_leap_year(2010));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(2000));
        assert_eq!(days_in_month(2008, 2), 29);
        assert_eq!(days_in_month(2010, 2), 28);
    }

    #[test]
    fn negative_times_before_epoch() -> Result<(), TimeError> {
        let t = SimTime::try_from_date(2009, 12, 31)?;
        assert!(t.as_secs() < 0);
        assert_eq!(t.date(), Date::try_new(2009, 12, 31)?);
        assert_eq!(t.seconds_of_day(), 0);
        Ok(())
    }

    #[test]
    fn seconds_of_day_and_hour() {
        let t = SimTime::from_ymd_hms(2010, 3, 7, 4, 40, 0);
        assert_eq!(t.seconds_of_day(), 4 * 3600 + 40 * 60);
        assert!((t.hour_of_day_f64() - (4.0 + 40.0 / 60.0)).abs() < 1e-12);
    }

    #[test]
    fn duration_arithmetic_and_display() {
        let a = SimTime::from_date(2010, 2, 19);
        let b = SimTime::from_date(2010, 3, 13);
        let d = b - a;
        assert_eq!(d.as_days_f64(), 22.0);
        assert_eq!(format!("{d}"), "22d 00:00:00");
        assert_eq!(format!("{}", SimDuration::minutes(-90)), "-01:30:00");
        assert_eq!(a + d, b);
        assert_eq!(b - d, a);
    }

    #[test]
    fn day_of_year() {
        assert_eq!(SimTime::from_date(2010, 1, 1).day_of_year(), 1);
        assert_eq!(SimTime::from_date(2010, 2, 12).day_of_year(), 43);
        assert_eq!(SimTime::from_date(2010, 12, 31).day_of_year(), 365);
    }

    #[test]
    fn invalid_dates_rejected() {
        assert!(Date::new(2010, 2, 29).is_none());
        assert!(Date::new(2010, 13, 1).is_none());
        assert!(Date::new(2010, 0, 1).is_none());
        assert!(Date::new(2010, 4, 31).is_none());
        assert!(DateTime::new(2010, 1, 1, 24, 0, 0).is_none());
        assert!(DateTime::new(2010, 1, 1, 0, 60, 0).is_none());
    }

    #[test]
    fn typed_errors_name_the_offending_fields() {
        assert_eq!(
            Date::try_new(2010, 2, 29),
            Err(TimeError::InvalidDate {
                year: 2010,
                month: 2,
                day: 29
            })
        );
        assert_eq!(
            SimTime::try_from_ymd_hms(2010, 1, 1, 24, 0, 0),
            Err(TimeError::InvalidTime {
                hour: 24,
                min: 0,
                sec: 0
            })
        );
        assert_eq!(
            TimeError::InvalidDate {
                year: 2010,
                month: 2,
                day: 29
            }
            .to_string(),
            "invalid calendar date 2010-02-29"
        );
        assert_eq!(
            TimeError::InvalidTime {
                hour: 24,
                min: 0,
                sec: 0
            }
            .to_string(),
            "invalid time of day 24:00:00"
        );
    }

    #[test]
    fn duration_since_saturates() {
        let a = SimTime::from_secs(100);
        let b = SimTime::from_secs(50);
        assert_eq!(b.duration_since(a), SimDuration::ZERO);
        assert_eq!(a.duration_since(b), SimDuration::secs(50));
    }

    #[test]
    fn short_label_format() -> Result<(), TimeError> {
        assert_eq!(Date::try_new(2010, 3, 7)?.short_label(), "Mar 07");
        assert_eq!(Date::try_new(2010, 12, 25)?.short_label(), "Dec 25");
        Ok(())
    }

    #[test]
    fn succ_crosses_month_and_year() -> Result<(), TimeError> {
        assert_eq!(
            Date::try_new(2010, 2, 28)?.succ(),
            Date::try_new(2010, 3, 1)?
        );
        assert_eq!(
            Date::try_new(2009, 12, 31)?.succ(),
            Date::try_new(2010, 1, 1)?
        );
        Ok(())
    }
}
