//! CSV emission for the figure harness.
//!
//! The reproduction binaries print the exact series a plotting tool would
//! consume: one timestamp column (ISO date-time *and* fractional days since
//! the experiment start, because the paper's x-axes are dates) and one
//! column per channel. Missing samples are empty cells, which is how the
//! Lascar's late arrival shows up in Fig. 3/4.

use frostlab_simkern::time::SimTime;

use crate::series::TimeSeries;

/// Render aligned series as CSV. Channels are sampled by exact timestamp
/// match against the union of all timestamps.
pub fn to_csv(channels: &[(&str, &TimeSeries)]) -> String {
    use std::collections::BTreeMap;
    let mut rows: BTreeMap<SimTime, Vec<Option<f64>>> = BTreeMap::new();
    for (ci, (_, series)) in channels.iter().enumerate() {
        for &(t, v) in series.points() {
            rows.entry(t).or_insert_with(|| vec![None; channels.len()])[ci] = Some(v);
        }
    }
    let mut out = String::new();
    out.push_str("datetime,days");
    for (name, _) in channels {
        out.push(',');
        out.push_str(name);
    }
    out.push('\n');
    for (t, vals) in rows {
        out.push_str(&format!("{},{:.4}", t.datetime(), t.as_days_f64()));
        for v in vals {
            out.push(',');
            if let Some(v) = v {
                out.push_str(&format!("{v:.2}"));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_shape_and_alignment() {
        let a =
            TimeSeries::from_points([(SimTime::from_secs(0), 1.0), (SimTime::from_secs(600), 2.0)]);
        let b = TimeSeries::from_points([(SimTime::from_secs(600), 3.5)]);
        let csv = to_csv(&[("outside", &a), ("inside", &b)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "datetime,days,outside,inside");
        assert!(
            lines[1].ends_with(",1.00,"),
            "missing inside cell: {}",
            lines[1]
        );
        assert!(lines[2].ends_with(",2.00,3.50"), "{}", lines[2]);
    }

    #[test]
    fn empty_channels() {
        let a = TimeSeries::new();
        let csv = to_csv(&[("only", &a)]);
        assert_eq!(csv.lines().count(), 1);
    }

    #[test]
    fn no_channels_at_all_is_just_the_time_header() {
        assert_eq!(to_csv(&[]), "datetime,days\n");
    }

    #[test]
    fn several_empty_channels_still_name_their_columns() {
        let a = TimeSeries::new();
        let b = TimeSeries::new();
        let csv = to_csv(&[("outside", &a), ("inside", &b)]);
        assert_eq!(csv, "datetime,days,outside,inside\n");
    }

    #[test]
    fn nan_samples_render_as_nan_cells_not_empty_ones() {
        // A NaN is a *present* broken reading (e.g. a corrupted logger
        // record), distinct from a missing sample's empty cell.
        let a = TimeSeries::from_points([
            (SimTime::from_secs(0), f64::NAN),
            (SimTime::from_secs(600), 1.0),
        ]);
        let b = TimeSeries::from_points([(SimTime::from_secs(600), 2.0)]);
        let csv = to_csv(&[("bad", &a), ("good", &b)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].ends_with(",NaN,"), "NaN cell lost: {}", lines[1]);
        assert!(lines[2].ends_with(",1.00,2.00"), "{}", lines[2]);
    }

    #[test]
    fn dates_render() {
        let a = TimeSeries::from_points([(SimTime::from_date(2010, 3, 7), -9.5)]);
        let csv = to_csv(&[("t", &a)]);
        assert!(csv.contains("2010-03-07 00:00:00"), "{csv}");
    }
}
