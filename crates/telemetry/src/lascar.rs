//! The Lascar EL-USB-2-LCD temperature/RH data logger.
//!
//! §3.3: "Measurement error for the unit is ±0.5 °C, ±3.0 % RH typically
//! and ±2 °C, ±6.0 % RH maximum. … The advantage of the data logger is that
//! it is machine readable, although only by manually inserting the device
//! into an USB port. Due to this, we have been forced to remove a number of
//! outliers in the measurements caused by removing the data logger and
//! carrying it indoors."
//!
//! So the model includes, deliberately:
//!
//! * instrument error as slowly drifting calibration bias (OU, ~12 h) at
//!   the *typical* spec plus a small white component, clamped to the
//!   *maximum* spec — hygrometer error is autocorrelated, not white;
//! * 0.5-unit quantization (the EL-USB-2's resolution);
//! * a finite sample memory (16 382 readings per channel on the real unit);
//! * a deployment date — the unit "arrived late", leaving the early weeks
//!   of the campaign unlogged;
//! * **readout excursions**: while being carried indoors and read over USB
//!   the logger keeps sampling, recording office air instead of tent air.

use frostlab_simkern::rng::Rng;
use frostlab_simkern::time::{SimDuration, SimTime};

use crate::series::{SeriesError, TimeSeries};

/// Datasheet-derived configuration.
#[derive(Debug, Clone)]
pub struct LascarConfig {
    /// Sampling interval (configurable on the unit; 5 min here).
    pub interval: SimDuration,
    /// Typical (1-σ) temperature error, K.
    pub temp_err_typ_k: f64,
    /// Maximum temperature error (hard clamp), K.
    pub temp_err_max_k: f64,
    /// Typical (1-σ) RH error, percentage points.
    pub rh_err_typ_pct: f64,
    /// Maximum RH error, percentage points.
    pub rh_err_max_pct: f64,
    /// Quantization step for both channels.
    pub resolution: f64,
    /// Per-channel sample memory.
    pub capacity: usize,
}

impl Default for LascarConfig {
    fn default() -> Self {
        LascarConfig {
            interval: SimDuration::minutes(5),
            temp_err_typ_k: 0.5,
            temp_err_max_k: 2.0,
            rh_err_typ_pct: 3.0,
            rh_err_max_pct: 6.0,
            resolution: 0.5,
            capacity: 16_382,
        }
    }
}

/// The logger.
#[derive(Debug, Clone)]
pub struct LascarLogger {
    config: LascarConfig,
    rng: Rng,
    /// First instant the logger exists on site.
    deployed_at: SimTime,
    next_due: SimTime,
    temp: TimeSeries,
    rh: TimeSeries,
    /// Samples taken since the last USB readout (readouts download and
    /// clear the device memory, freeing capacity).
    since_readout: usize,
    /// Slowly drifting calibration bias of the temperature channel, K.
    /// Instrument error on these hygrometer/thermistor loggers is dominated
    /// by calibration drift (strongly autocorrelated), not white noise —
    /// modelled as an OU process with a half-day relaxation time.
    temp_bias_k: f64,
    /// Slowly drifting bias of the RH channel, percentage points.
    rh_bias_pct: f64,
    /// Active indoor excursion, if any: `(start, end)`.
    excursion: Option<(SimTime, SimTime)>,
    /// All excursions taken (ground truth for validating outlier removal).
    excursions: Vec<(SimTime, SimTime)>,
}

/// Office conditions the logger sees while being read out indoors.
const INDOOR_TEMP_C: f64 = 21.5;
const INDOOR_RH_PCT: f64 = 35.0;

impl LascarLogger {
    /// Deploy the logger at `deployed_at` (§3.3: it arrived late — the
    /// scripted scenario deploys it weeks after the experiment started).
    pub fn new(config: LascarConfig, deployed_at: SimTime, seed_rng: &Rng) -> Self {
        LascarLogger {
            rng: seed_rng.derive("lascar"),
            deployed_at,
            next_due: deployed_at,
            temp: TimeSeries::new(),
            rh: TimeSeries::new(),
            since_readout: 0,
            temp_bias_k: 0.0,
            rh_bias_pct: 0.0,
            excursion: None,
            excursions: Vec::new(),
            config,
        }
    }

    /// Deployment instant.
    pub fn deployed_at(&self) -> SimTime {
        self.deployed_at
    }

    /// Begin a manual USB readout: the logger goes indoors for `duration`,
    /// its memory is downloaded and cleared (capacity resets).
    pub fn begin_readout(&mut self, at: SimTime, duration: SimDuration) {
        let window = (at, at + duration);
        self.excursion = Some(window);
        self.excursions.push(window);
        self.since_readout = 0;
    }

    /// Ground-truth list of indoor excursions.
    pub fn excursions(&self) -> &[(SimTime, SimTime)] {
        &self.excursions
    }

    fn quantize(&self, v: f64) -> f64 {
        (v / self.config.resolution).round() * self.config.resolution
    }

    /// Advance an OU-modelled calibration bias one sample interval.
    /// Stationary sd = `typ`; relaxation time ≈ 12 h.
    fn step_bias(&mut self, bias: f64, typ: f64) -> f64 {
        let dt_h = self.config.interval.as_secs() as f64 / 3600.0;
        let a = (-dt_h / 12.0).exp();
        a * bias + typ * (1.0 - a * a).sqrt() * self.rng.standard_normal()
    }

    fn noisy(&mut self, truth: f64, bias: f64, typ: f64, max: f64) -> f64 {
        // Bias (drift) plus a tiny white repeatability component; the sum
        // clamps at the datasheet maximum. The ±typ figure is *accuracy*
        // (absolute); sample-to-sample repeatability on these units is
        // sub-quantization (~0.1 unit), so the 0.5-step quantizer is the
        // dominant short-term artifact.
        let err = (bias + self.rng.normal(0.0, typ / 30.0)).clamp(-max, max);
        self.quantize(truth + err)
    }

    /// If a sample is due at or before `t`, record it. `tent_temp`/`tent_rh`
    /// are the enclosure's current true air state. Returns whether a sample
    /// was taken; surfaces the series' ordering error instead of panicking
    /// (the logger's own clock only moves forward, so an error here means a
    /// caller rewound time on a shared series).
    pub fn try_poll(
        &mut self,
        t: SimTime,
        tent_temp: f64,
        tent_rh: f64,
    ) -> Result<bool, SeriesError> {
        if t < self.next_due || self.since_readout >= self.config.capacity {
            return Ok(false);
        }
        self.since_readout += 1;
        let sample_t = self.next_due;
        self.next_due += self.config.interval;
        let indoors = self
            .excursion
            .map(|(s, e)| sample_t >= s && sample_t <= e)
            .unwrap_or(false);
        if let Some((_, e)) = self.excursion {
            if sample_t > e {
                self.excursion = None;
            }
        }
        let (true_t, true_rh) = if indoors {
            (INDOOR_TEMP_C, INDOOR_RH_PCT)
        } else {
            (tent_temp, tent_rh)
        };
        self.temp_bias_k = self.step_bias(self.temp_bias_k, self.config.temp_err_typ_k);
        self.rh_bias_pct = self.step_bias(self.rh_bias_pct, self.config.rh_err_typ_pct);
        let temp = self.noisy(
            true_t,
            self.temp_bias_k,
            self.config.temp_err_typ_k,
            self.config.temp_err_max_k,
        );
        let rh = self
            .noisy(
                true_rh,
                self.rh_bias_pct,
                self.config.rh_err_typ_pct,
                self.config.rh_err_max_pct,
            )
            .clamp(0.0, 100.0);
        self.temp.try_push(sample_t, temp)?;
        self.rh.try_push(sample_t, rh)?;
        Ok(true)
    }

    /// [`try_poll`](Self::try_poll), panicking on a series ordering error.
    pub fn poll(&mut self, t: SimTime, tent_temp: f64, tent_rh: f64) -> bool {
        self.try_poll(t, tent_temp, tent_rh)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// The logged temperature series (what the USB readout produces).
    pub fn temperature(&self) -> &TimeSeries {
        &self.temp
    }

    /// The logged RH series.
    pub fn humidity(&self) -> &TimeSeries {
        &self.rh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logger(deploy_secs: i64) -> LascarLogger {
        LascarLogger::new(
            LascarConfig::default(),
            SimTime::from_secs(deploy_secs),
            &Rng::new(33),
        )
    }

    #[test]
    fn no_data_before_deployment() {
        let mut l = logger(86_400); // deployed on day 2
        assert!(!l.poll(SimTime::from_secs(1000), -5.0, 60.0));
        assert!(l.temperature().is_empty());
        assert!(l.poll(SimTime::from_secs(86_400), -5.0, 60.0));
        assert_eq!(l.temperature().len(), 1);
        assert_eq!(l.temperature().start(), Some(SimTime::from_secs(86_400)));
    }

    #[test]
    fn five_minute_cadence() {
        let mut l = logger(0);
        for s in 0..3600 {
            l.poll(SimTime::from_secs(s), 0.0, 80.0);
        }
        assert_eq!(l.temperature().len(), 12); // 0,5,...,55 min
    }

    #[test]
    fn noise_within_max_spec_and_quantized() {
        let mut l = logger(0);
        for i in 0..5_000i64 {
            l.poll(SimTime::from_secs(i * 300), -10.0, 85.0);
        }
        for (_, v) in l.temperature().points() {
            assert!(
                (v + 10.0).abs() <= 2.0 + 0.25,
                "temp error beyond max spec: {v}"
            );
            let q = v / 0.5;
            assert!((q - q.round()).abs() < 1e-9, "not quantized: {v}");
        }
        for (_, v) in l.humidity().points() {
            assert!(
                (v - 85.0).abs() <= 6.0 + 0.25,
                "rh error beyond max spec: {v}"
            );
        }
        // Typical error: std of temp channel ≈ 0.5.
        let sd = l.temperature().std_dev().unwrap();
        assert!((0.3..0.8).contains(&sd), "temperature noise sd {sd}");
    }

    #[test]
    fn readout_excursion_records_indoor_air() {
        let mut l = logger(0);
        // One hour of tent air at −8 °C.
        for i in 0..12i64 {
            l.poll(SimTime::from_secs(i * 300), -8.0, 80.0);
        }
        // Carried indoors for 30 min.
        l.begin_readout(SimTime::from_secs(3600), SimDuration::minutes(30));
        for i in 12..24i64 {
            l.poll(SimTime::from_secs(i * 300), -8.0, 80.0);
        }
        let temps: Vec<f64> = l.temperature().values().collect();
        // Samples at 60, 65, ..., 90 min should be ≈ 21.5 °C.
        let indoor: Vec<f64> = temps[12..=18].to_vec();
        assert!(
            indoor.iter().all(|&t| t > 15.0),
            "indoor samples {indoor:?}"
        );
        // Before and after: tent air.
        assert!(temps[..12].iter().all(|&t| t < 0.0));
        assert!(temps[20..].iter().all(|&t| t < 0.0));
        assert_eq!(l.excursions().len(), 1);
    }

    #[test]
    fn capacity_limit() {
        let mut l = LascarLogger::new(
            LascarConfig {
                capacity: 10,
                ..LascarConfig::default()
            },
            SimTime::ZERO,
            &Rng::new(1),
        );
        for i in 0..100i64 {
            l.poll(SimTime::from_secs(i * 300), 0.0, 50.0);
        }
        assert_eq!(l.temperature().len(), 10);
    }

    #[test]
    fn try_poll_mirrors_poll() {
        let mut l = logger(0);
        assert_eq!(l.try_poll(SimTime::from_secs(0), -5.0, 60.0), Ok(true));
        // Not due again for 5 minutes.
        assert_eq!(l.try_poll(SimTime::from_secs(60), -5.0, 60.0), Ok(false));
        assert_eq!(l.temperature().len(), 1);
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut l = logger(0);
            for i in 0..100i64 {
                l.poll(SimTime::from_secs(i * 300), -3.0, 75.0);
            }
            l.temperature().values().collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
