//! # frostlab-telemetry
//!
//! Instrumentation substrate: the sensors, loggers and meters the study
//! used, warts and all.
//!
//! The figures in the paper are not plots of the atmosphere — they are
//! plots of *instrument output*. Fig. 3/4's inside series starts late
//! ("because the Lascar data logger arrived late, tent-internal temperature
//! and humidity data from the early parts of the experiment are missing")
//! and has had outliers removed ("caused by removing the data logger and
//! carrying it indoors" to read it over USB). Reproducing the figures means
//! reproducing the instruments:
//!
//! * [`series`] — a small time-series container (monotonic timestamps,
//!   stats, resampling, gap detection);
//! * [`lascar`] — the Lascar EL-USB-2-LCD logger: ±0.5 °C / ±3 %RH typical
//!   error, 0.5-unit quantization, finite sample memory, and the
//!   carried-indoors readout excursions;
//! * [`technoline`] — the Technoline Cost Control wall-plug energy meter;
//! * [`outlier`] — the spike filter used to clean the indoor excursions out
//!   of the published series;
//! * [`export`] — CSV emission for the figure harness;
//! * [`webcam`] — the terrace webcam from the paper's footnote 1, rendered
//!   as hourly ASCII frames of the simulated scene.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod lascar;
pub mod outlier;
pub mod series;
pub mod technoline;
pub mod webcam;

pub use lascar::{LascarConfig, LascarLogger};
pub use series::{SeriesError, TimeSeries};
pub use technoline::CostControlMeter;
