//! Outlier removal for the published series.
//!
//! Fig. 3/4's caption work: "we have been forced to remove a number of
//! outliers in the measurements caused by removing the data logger and
//! carrying it indoors. These outliers have been removed from the graphs."
//!
//! The indoor excursions look like step spikes: a handful of consecutive
//! samples ~25 K above the surrounding trace. A robust spike filter —
//! deviation from the rolling median, thresholded in MAD units — flags
//! them without touching genuine weather fronts (which move a few K per
//! hour, not 25 K in five minutes).

use crate::series::TimeSeries;

/// Configuration for the median/MAD spike filter.
#[derive(Debug, Clone)]
pub struct SpikeFilter {
    /// Half-width of the rolling window, in samples.
    pub half_window: usize,
    /// Flag samples deviating more than this many MADs from the local
    /// median.
    pub mad_threshold: f64,
    /// Absolute minimum deviation to flag (guards near-constant traces,
    /// where MAD collapses to ~0), in the series' units.
    pub min_deviation: f64,
}

impl Default for SpikeFilter {
    fn default() -> Self {
        SpikeFilter {
            half_window: 12,
            mad_threshold: 6.0,
            min_deviation: 5.0,
        }
    }
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

impl SpikeFilter {
    /// Return a boolean mask: `true` = outlier.
    pub fn mask(&self, series: &TimeSeries) -> Vec<bool> {
        let pts = series.points();
        let n = pts.len();
        let mut mask = vec![false; n];
        if n < 3 {
            return mask;
        }
        for i in 0..n {
            let lo = i.saturating_sub(self.half_window);
            let hi = (i + self.half_window + 1).min(n);
            let mut window: Vec<f64> = pts[lo..hi].iter().map(|&(_, v)| v).collect();
            let med = median(&mut window);
            let mut devs: Vec<f64> = window.iter().map(|v| (v - med).abs()).collect();
            let mad = median(&mut devs).max(1e-9);
            let dev = (pts[i].1 - med).abs();
            if dev > self.mad_threshold * mad && dev > self.min_deviation {
                mask[i] = true;
            }
        }
        mask
    }

    /// Remove flagged samples, returning the cleaned series and the number
    /// of samples removed.
    pub fn clean(&self, series: &TimeSeries) -> (TimeSeries, usize) {
        let mask = self.mask(series);
        let removed = mask.iter().filter(|&&m| m).count();
        let cleaned = TimeSeries::from_points(
            series
                .points()
                .iter()
                .zip(&mask)
                .filter(|(_, &is_outlier)| !is_outlier)
                .map(|(&p, _)| p),
        );
        (cleaned, removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frostlab_simkern::time::SimTime;

    fn t(i: i64) -> SimTime {
        SimTime::from_secs(i * 300)
    }

    /// A tent trace at ≈ −5 °C with an indoor excursion at samples 50–56.
    fn trace_with_excursion() -> TimeSeries {
        TimeSeries::from_points((0..120i64).map(|i| {
            let v = if (50..=56).contains(&i) {
                21.5
            } else {
                -5.0 + (i as f64 / 10.0).sin()
            };
            (t(i), v)
        }))
    }

    #[test]
    fn excursion_flagged_exactly() {
        let s = trace_with_excursion();
        let mask = SpikeFilter::default().mask(&s);
        for (i, &m) in mask.iter().enumerate() {
            let expect = (50..=56).contains(&(i as i64));
            assert_eq!(m, expect, "sample {i}");
        }
    }

    #[test]
    fn clean_removes_only_the_spike() {
        let s = trace_with_excursion();
        let (cleaned, removed) = SpikeFilter::default().clean(&s);
        assert_eq!(removed, 7);
        assert_eq!(cleaned.len(), 113);
        assert!(cleaned.max().unwrap() < 0.0, "no indoor samples survive");
    }

    #[test]
    fn genuine_weather_front_not_flagged() {
        // A warm front: +8 K over 4 hours (48 samples) — steep but real.
        let s = TimeSeries::from_points((0..200i64).map(|i| {
            let v = if i < 100 {
                -10.0
            } else {
                -10.0 + 8.0 * ((i - 100) as f64 / 48.0).min(1.0)
            };
            (t(i), v + 0.2 * (i as f64).sin())
        }));
        let mask = SpikeFilter::default().mask(&s);
        let flagged = mask.iter().filter(|&&m| m).count();
        assert_eq!(flagged, 0, "weather fronts must survive the filter");
    }

    #[test]
    fn short_series_untouched() {
        let s = TimeSeries::from_points([(t(0), 1.0), (t(1), 100.0)]);
        let mask = SpikeFilter::default().mask(&s);
        assert_eq!(mask, vec![false, false]);
    }

    #[test]
    fn constant_series_not_flagged() {
        let s = TimeSeries::from_points((0..50i64).map(|i| (t(i), 4.0)));
        let (cleaned, removed) = SpikeFilter::default().clean(&s);
        assert_eq!(removed, 0);
        assert_eq!(cleaned.len(), 50);
    }
}
