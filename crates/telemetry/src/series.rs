//! A minimal time-series container.
//!
//! Timestamps must be strictly increasing — the instruments all sample
//! forward in time, and the figure code depends on ordering. Values are
//! `f64`; gaps are represented by absent samples (and can be *detected*,
//! which the Fig. 3/4 code uses to draw the Lascar's missing early weeks).

use frostlab_simkern::time::{SimDuration, SimTime};

/// Errors from series construction and resampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesError {
    /// A sample's timestamp was not strictly after the previous one.
    NonMonotonic {
        /// The rejected sample's timestamp.
        t: SimTime,
        /// The series' current last timestamp.
        last: SimTime,
    },
    /// A resampling bucket of zero width.
    ZeroBucket,
}

impl std::fmt::Display for SeriesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SeriesError::NonMonotonic { t, last } => {
                write!(f, "non-monotonic sample at {t:?} after {last:?}")
            }
            SeriesError::ZeroBucket => write!(f, "bucket must be positive"),
        }
    }
}

impl std::error::Error for SeriesError {}

/// One sampled channel.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a sample, rejecting out-of-order timestamps.
    pub fn try_push(&mut self, t: SimTime, value: f64) -> Result<(), SeriesError> {
        if let Some(&(last, _)) = self.points.last() {
            if t <= last {
                return Err(SeriesError::NonMonotonic { t, last });
            }
        }
        self.points.push((t, value));
        Ok(())
    }

    /// Append a sample.
    ///
    /// # Panics
    /// Panics if `t` is not strictly after the previous sample.
    pub fn push(&mut self, t: SimTime, value: f64) {
        self.try_push(t, value).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The raw samples.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Values only.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.points.iter().map(|&(_, v)| v)
    }

    /// First sample time.
    pub fn start(&self) -> Option<SimTime> {
        self.points.first().map(|&(t, _)| t)
    }

    /// Last sample time.
    pub fn end(&self) -> Option<SimTime> {
        self.points.last().map(|&(t, _)| t)
    }

    /// Minimum value (None when empty).
    pub fn min(&self) -> Option<f64> {
        self.values()
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
    }

    /// Maximum value.
    pub fn max(&self) -> Option<f64> {
        self.values()
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> Option<f64> {
        if self.points.is_empty() {
            None
        } else {
            Some(self.values().sum::<f64>() / self.len() as f64)
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        if self.len() < 2 {
            return None;
        }
        let mean = self.mean()?;
        let var = self.values().map(|v| (v - mean).powi(2)).sum::<f64>() / (self.len() - 1) as f64;
        Some(var.sqrt())
    }

    /// Sub-series within `[from, to]` inclusive.
    pub fn window(&self, from: SimTime, to: SimTime) -> TimeSeries {
        TimeSeries {
            points: self
                .points
                .iter()
                .filter(|&&(t, _)| t >= from && t <= to)
                .copied()
                .collect(),
        }
    }

    /// Gaps longer than `min_gap` between consecutive samples:
    /// `(gap_start, gap_end)` pairs.
    pub fn gaps(&self, min_gap: SimDuration) -> Vec<(SimTime, SimTime)> {
        self.points
            .windows(2)
            .filter(|w| w[1].0 - w[0].0 > min_gap)
            .map(|w| (w[0].0, w[1].0))
            .collect()
    }

    /// Downsample by averaging into fixed buckets of width `bucket`,
    /// timestamped at the bucket start. Empty buckets are skipped.
    /// Rejects a zero-width bucket.
    pub fn try_resample_mean(&self, bucket: SimDuration) -> Result<TimeSeries, SeriesError> {
        if bucket.as_secs() <= 0 {
            return Err(SeriesError::ZeroBucket);
        }
        let mut out = TimeSeries::new();
        let mut i = 0;
        while i < self.points.len() {
            let bucket_start = SimTime::from_secs(
                self.points[i].0.as_secs().div_euclid(bucket.as_secs()) * bucket.as_secs(),
            );
            let bucket_end = bucket_start + bucket;
            let mut sum = 0.0;
            let mut n = 0usize;
            while i < self.points.len() && self.points[i].0 < bucket_end {
                sum += self.points[i].1;
                n += 1;
                i += 1;
            }
            out.push(bucket_start, sum / n as f64);
        }
        Ok(out)
    }

    /// Downsample by averaging into fixed buckets of width `bucket`.
    ///
    /// # Panics
    /// Panics if `bucket` is zero.
    pub fn resample_mean(&self, bucket: SimDuration) -> TimeSeries {
        self.try_resample_mean(bucket)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Build from an iterator of points, rejecting out-of-order timestamps.
    pub fn try_from_points(
        points: impl IntoIterator<Item = (SimTime, f64)>,
    ) -> Result<TimeSeries, SeriesError> {
        let mut s = TimeSeries::new();
        for (t, v) in points {
            s.try_push(t, v)?;
        }
        Ok(s)
    }

    /// Build from an iterator of points (must be strictly increasing).
    ///
    /// # Panics
    /// Panics if any timestamp is not strictly after its predecessor.
    pub fn from_points(points: impl IntoIterator<Item = (SimTime, f64)>) -> TimeSeries {
        Self::try_from_points(points).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Keep only the samples for which `keep` returns true.
    pub fn filtered(&self, mut keep: impl FnMut(SimTime, f64) -> bool) -> TimeSeries {
        TimeSeries {
            points: self
                .points
                .iter()
                .filter(|&&(t, v)| keep(t, v))
                .copied()
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: i64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn sample() -> TimeSeries {
        TimeSeries::from_points((0..10).map(|i| (t(i * 600), i as f64)))
    }

    #[test]
    fn basic_stats() {
        let s = sample();
        assert_eq!(s.len(), 10);
        assert_eq!(s.min(), Some(0.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.mean(), Some(4.5));
        assert!((s.std_dev().unwrap() - 3.0276).abs() < 1e-3);
        assert_eq!(s.start(), Some(t(0)));
        assert_eq!(s.end(), Some(t(5400)));
    }

    #[test]
    fn empty_stats() {
        let s = TimeSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.min(), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.std_dev(), None);
    }

    #[test]
    #[should_panic(expected = "non-monotonic")]
    fn non_monotonic_rejected() {
        let mut s = TimeSeries::new();
        s.push(t(100), 1.0);
        s.push(t(100), 2.0);
    }

    #[test]
    fn try_push_reports_the_offending_timestamps() {
        let mut s = TimeSeries::new();
        assert_eq!(s.try_push(t(100), 1.0), Ok(()));
        assert_eq!(
            s.try_push(t(50), 2.0),
            Err(SeriesError::NonMonotonic {
                t: t(50),
                last: t(100)
            })
        );
        // The failed push left the series untouched.
        assert_eq!(s.len(), 1);
        let msg = s.try_push(t(100), 2.0).unwrap_err().to_string();
        assert!(msg.contains("non-monotonic"), "{msg}");
    }

    #[test]
    fn try_from_points_surfaces_the_first_bad_sample() {
        let err =
            TimeSeries::try_from_points([(t(0), 1.0), (t(600), 2.0), (t(300), 3.0)]).unwrap_err();
        assert_eq!(
            err,
            SeriesError::NonMonotonic {
                t: t(300),
                last: t(600)
            }
        );
    }

    #[test]
    fn try_resample_mean_rejects_zero_bucket() {
        let s = sample();
        assert_eq!(
            s.try_resample_mean(SimDuration::ZERO).unwrap_err(),
            SeriesError::ZeroBucket
        );
        let ok = s.try_resample_mean(SimDuration::minutes(30)).unwrap();
        assert_eq!(ok.len(), 4);
    }

    #[test]
    fn window_slicing() {
        let s = sample();
        let w = s.window(t(600), t(1800));
        assert_eq!(w.len(), 3);
        assert_eq!(w.values().collect::<Vec<_>>(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn gap_detection() {
        let mut s = TimeSeries::new();
        s.push(t(0), 1.0);
        s.push(t(600), 1.0);
        s.push(t(7200), 1.0); // 110-minute gap
        s.push(t(7800), 1.0);
        let gaps = s.gaps(SimDuration::minutes(30));
        assert_eq!(gaps, vec![(t(600), t(7200))]);
    }

    #[test]
    fn resample_mean() {
        let s = sample(); // samples every 10 min, values 0..9
        let r = s.resample_mean(SimDuration::minutes(30));
        // Buckets: [0,1,2], [3,4,5], [6,7,8], [9].
        assert_eq!(r.len(), 4);
        let vals: Vec<f64> = r.values().collect();
        assert_eq!(vals, vec![1.0, 4.0, 7.0, 9.0]);
        assert_eq!(r.points()[1].0, t(1800));
    }

    #[test]
    fn filtered() {
        let s = sample();
        let f = s.filtered(|_, v| v as i64 % 2 == 0);
        assert_eq!(f.len(), 5);
    }
}
