//! The terrace webcam.
//!
//! Footnote 1 of the paper: *"An hourly webcam image of the terrace (with
//! the tent) is available at <http://www.cs.helsinki.fi/Exactum-kamera/>"*.
//! The camera was part of the experiment's public face; here it renders an
//! hourly ASCII "frame" of the scene from the simulation state — useful as
//! a human-readable campaign digest (and in anger, for eyeballing whether
//! the tent model is doing something absurd at 03:00 on Mar 2).

use frostlab_simkern::time::SimTime;

/// Everything the camera can see in one frame.
#[derive(Debug, Clone, Copy)]
pub struct SceneState {
    /// Frame timestamp.
    pub t: SimTime,
    /// Outside temperature, °C.
    pub outside_c: f64,
    /// Tent-internal temperature, °C.
    pub tent_c: f64,
    /// Wind speed, m/s.
    pub wind_ms: f64,
    /// Solar irradiance, W/m² (0 = night).
    pub solar_w_m2: f64,
    /// Is precipitation falling?
    pub precipitating: bool,
    /// Snow depth on the terrace, cm.
    pub snow_cm: f64,
    /// Number of machines running in the tent.
    pub machines_running: usize,
}

/// Render one hourly frame as ASCII art with a status line.
pub fn render_frame(s: &SceneState) -> String {
    let sky = if s.solar_w_m2 <= 0.0 {
        "  *    .      *        .     *    " // night
    } else if s.precipitating {
        "  \\ \\  \\ \\   \\ \\  \\ \\   \\ \\  \\ \\ " // falling snow/rain
    } else if s.solar_w_m2 > 200.0 {
        "        \\ | /      ---( )---      " // sunny
    } else {
        "   ~~~~    ~~~~~~     ~~~~   ~~~  " // overcast
    };
    let wind = match s.wind_ms {
        w if w > 8.0 => "≋≋≋",
        w if w > 4.0 => "≈≈ ",
        _ => "   ",
    };
    let snow_line: String = if s.snow_cm > 1.0 {
        "_".repeat(34).replace('_', "*")
    } else {
        "_".repeat(34)
    };
    let lights = "o".repeat(s.machines_running.min(9));
    format!(
        "+----------------------------------+\n\
         |{sky}|\n\
         |        __________                |\n\
         | {wind}   /| tent    |\\    [cam]     |\n\
         |     /_|__________|_\\             |\n\
         |       | {lights:<9}|               |\n\
         |{snow_line}|\n\
         +----------------------------------+\n\
         {} | out {:+5.1} C | tent {:+5.1} C | wind {:4.1} m/s | snow {:4.1} cm | {} hosts\n",
        s.t.datetime(),
        s.outside_c,
        s.tent_c,
        s.wind_ms,
        s.snow_cm,
        s.machines_running,
    )
}

/// A camera that keeps the last `capacity` hourly frames (ring buffer, like
/// the real site's rolling archive).
#[derive(Debug, Clone)]
pub struct TerraceWebcam {
    frames: Vec<(SimTime, String)>,
    capacity: usize,
    next_due: SimTime,
}

impl TerraceWebcam {
    /// New camera, first frame at `start`.
    pub fn new(start: SimTime, capacity: usize) -> Self {
        TerraceWebcam {
            frames: Vec::new(),
            capacity: capacity.max(1),
            next_due: start,
        }
    }

    /// Capture a frame if one is due at `scene.t` (hourly cadence).
    /// Returns true if a frame was taken.
    pub fn poll(&mut self, scene: &SceneState) -> bool {
        if scene.t < self.next_due {
            return false;
        }
        self.next_due = scene.t + frostlab_simkern::time::SimDuration::hours(1);
        if self.frames.len() == self.capacity {
            self.frames.remove(0);
        }
        self.frames.push((scene.t, render_frame(scene)));
        true
    }

    /// The archived frames, oldest first.
    pub fn frames(&self) -> &[(SimTime, String)] {
        &self.frames
    }

    /// The most recent frame, if any.
    pub fn latest(&self) -> Option<&str> {
        self.frames.last().map(|(_, f)| f.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frostlab_simkern::time::SimDuration;

    fn scene(t_secs: i64) -> SceneState {
        SceneState {
            t: SimTime::from_secs(t_secs),
            outside_c: -12.3,
            tent_c: 4.5,
            wind_ms: 5.2,
            solar_w_m2: 0.0,
            precipitating: false,
            snow_cm: 8.0,
            machines_running: 9,
        }
    }

    #[test]
    fn frame_contains_the_facts() {
        let f = render_frame(&scene(0));
        assert!(f.contains("-12.3 C"));
        assert!(f.contains("+4.5 C"));
        assert!(f.contains("9 hosts"));
        assert!(f.contains("ooooooooo"), "one light per machine:\n{f}");
        assert!(f.contains("tent"));
        // Snowy terrace renders stars.
        assert!(f.contains("***"));
    }

    #[test]
    fn sky_varies_with_conditions() {
        let mut s = scene(0);
        let night = render_frame(&s);
        s.solar_w_m2 = 350.0;
        let sunny = render_frame(&s);
        s.precipitating = true;
        let snowing = render_frame(&s);
        assert_ne!(night.lines().nth(1), sunny.lines().nth(1));
        assert_ne!(sunny.lines().nth(1), snowing.lines().nth(1));
    }

    #[test]
    fn hourly_cadence_and_ring_buffer() {
        let mut cam = TerraceWebcam::new(SimTime::ZERO, 3);
        let mut taken = 0;
        for min in 0..(5 * 60) {
            let mut s = scene(min * 60);
            s.t = SimTime::from_secs(min * 60);
            if cam.poll(&s) {
                taken += 1;
            }
        }
        assert_eq!(taken, 5, "one frame per hour");
        assert_eq!(cam.frames().len(), 3, "ring buffer holds the last 3");
        assert_eq!(cam.frames()[0].0, SimTime::ZERO + SimDuration::hours(2));
        assert!(cam.latest().is_some());
    }
}
