//! Struct-of-arrays server-case thermal kernel for fleet-scale stepping.
//!
//! [`CaseBank`] holds the chassis thermal state of *every* host in a fleet
//! as parallel flat arrays and steps one host with a closed-form kernel
//! that reproduces [`ServerCaseThermal`](crate::server_case::ServerCaseThermal)
//! **bit for bit**. The per-host object model builds a two-node RC network
//! (case air + CPU, coupled to the enclosure boundary) and integrates it
//! with exponential-Euler substeps; for that fixed topology the generic
//! solver's arithmetic collapses to a handful of fused update lines whose
//! floating-point operation order is copied here exactly:
//!
//! * conductance sums accumulate in edge order — boundary coupling first,
//!   then the case↔CPU link — so `gsum_case = airflow + g` and
//!   `gsum_cpu = g`;
//! * each substep freezes node temperatures before computing both
//!   `Σ G·T` terms (the solver reads a snapshot, not in-place updates);
//! * the substep count, substep width `h` and the decay factors
//!   `exp(−h·ΣG/C)` depend only on the host's constants and `dt`, so they
//!   are cached per distinct `dt` instead of recomputed per call — the
//!   cached values are produced by the very same expressions, keeping the
//!   results identical to the per-tick recomputation.
//!
//! The bank stores no heap data per step: all state lives in flat `Vec`s
//! sized once at fleet construction, which is what lets a 10,000-host
//! campaign tick in O(hosts) with zero allocations in the hot loop.

use crate::server_case::ServerThermalParams;

/// Flat-array thermal state for a fleet of server cases.
///
/// Hosts are addressed by the dense index returned from [`CaseBank::push`];
/// callers keep that index aligned with their other per-host columns.
#[derive(Debug, Clone, Default)]
pub struct CaseBank {
    // Mutable state.
    t_case: Vec<f64>,
    t_cpu: Vec<f64>,
    // Per-host constants (from `ServerThermalParams`).
    airflow_w_k: Vec<f64>,
    g_cpu_w_k: Vec<f64>,
    gsum_case: Vec<f64>,
    gsum_cpu: Vec<f64>,
    c_case: Vec<f64>,
    c_cpu: Vec<f64>,
    hdd_offset_k: Vec<f64>,
    // Integrator constants cached for the last-seen `dt` (NaN = stale).
    n_sub: Vec<u32>,
    k_case: Vec<f64>,
    k_cpu: Vec<f64>,
    cached_dt: f64,
}

impl CaseBank {
    /// An empty bank.
    pub fn new() -> Self {
        CaseBank {
            cached_dt: f64::NAN,
            ..CaseBank::default()
        }
    }

    /// Number of hosts in the bank.
    pub fn len(&self) -> usize {
        self.t_case.len()
    }

    /// Whether the bank holds no hosts.
    pub fn is_empty(&self) -> bool {
        self.t_case.is_empty()
    }

    /// Add one host's chassis, initialized to `initial_c` (both nodes),
    /// returning its dense index.
    pub fn push(&mut self, params: &ServerThermalParams, initial_c: f64) -> usize {
        let idx = self.t_case.len();
        self.t_case.push(initial_c);
        self.t_cpu.push(initial_c);
        let g = 1.0 / params.cpu_rth_k_w;
        self.airflow_w_k.push(params.case_airflow_w_k);
        self.g_cpu_w_k.push(g);
        // Edge-order accumulation: boundary coupling, then the CPU link.
        self.gsum_case.push((0.0 + params.case_airflow_w_k) + g);
        self.gsum_cpu.push(0.0 + g);
        self.c_case.push(params.case_capacity_j_k);
        self.c_cpu.push(params.cpu_capacity_j_k);
        self.hdd_offset_k.push(params.hdd_offset_k);
        self.n_sub.push(0);
        self.k_case.push(0.0);
        self.k_cpu.push(0.0);
        // New rows have no integrator constants yet.
        self.cached_dt = f64::NAN;
        idx
    }

    /// Recompute the per-host substep constants for a new step width.
    fn refresh_integrator(&mut self, dt_secs: f64) {
        for i in 0..self.t_case.len() {
            // `min_time_constant`: fold C/ΣG over the nodes in index order,
            // starting from +∞ (IEEE min, like the network solver).
            let tau = f64::min(
                f64::min(f64::INFINITY, self.c_case[i] / self.gsum_case[i]),
                self.c_cpu[i] / self.gsum_cpu[i],
            );
            let max_sub = if tau.is_finite() {
                (tau / 4.0).max(1e-3)
            } else {
                dt_secs
            };
            let n_sub = (dt_secs / max_sub).ceil().max(1.0) as usize;
            let h = dt_secs / n_sub as f64;
            self.n_sub[i] = n_sub as u32;
            self.k_case[i] = (-h * self.gsum_case[i] / self.c_case[i]).exp();
            self.k_cpu[i] = (-h * self.gsum_cpu[i] / self.c_cpu[i]).exp();
        }
        self.cached_dt = dt_secs;
    }

    /// Advance host `i` by `dt_secs` with the given enclosure intake
    /// temperature and power split — semantics (and bits) of
    /// `ServerCaseThermal::step`.
    pub fn step_one(
        &mut self,
        i: usize,
        dt_secs: f64,
        intake_c: f64,
        cpu_power_w: f64,
        total_power_w: f64,
    ) {
        assert!(dt_secs >= 0.0, "time cannot flow backwards");
        if dt_secs == 0.0 {
            return;
        }
        if dt_secs != self.cached_dt {
            self.refresh_integrator(dt_secs);
        }
        let other_w = (total_power_w - cpu_power_w).max(0.0);
        let airflow = self.airflow_w_k[i];
        let g = self.g_cpu_w_k[i];
        let (gsum_case, gsum_cpu) = (self.gsum_case[i], self.gsum_cpu[i]);
        let (k_case, k_cpu) = (self.k_case[i], self.k_cpu[i]);
        let (mut t_case, mut t_cpu) = (self.t_case[i], self.t_cpu[i]);
        for _ in 0..self.n_sub[i] {
            // Σ G·T from temperatures frozen at substep start, edge order.
            let gt_case = (0.0 + airflow * intake_c) + g * t_cpu;
            let gt_cpu = 0.0 + g * t_case;
            let t_inf_case = (gt_case + other_w) / gsum_case;
            let t_inf_cpu = (gt_cpu + cpu_power_w) / gsum_cpu;
            t_case = t_inf_case + (t_case - t_inf_case) * k_case;
            t_cpu = t_inf_cpu + (t_cpu - t_inf_cpu) * k_cpu;
        }
        self.t_case[i] = t_case;
        self.t_cpu[i] = t_cpu;
    }

    /// CPU die temperature of host `i`, °C.
    pub fn cpu_temp_c(&self, i: usize) -> f64 {
        self.t_cpu[i]
    }

    /// Internal case air temperature of host `i`, °C.
    pub fn case_temp_c(&self, i: usize) -> f64 {
        self.t_case[i]
    }

    /// Disk surface temperature of host `i` (case air + drive offset), °C.
    pub fn hdd_temp_c(&self, i: usize) -> f64 {
        self.t_case[i] + self.hdd_offset_k[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server_case::ServerCaseThermal;

    fn vendors() -> [ServerThermalParams; 3] {
        [
            ServerThermalParams::vendor_a_tower(),
            ServerThermalParams::vendor_b_sff(),
            ServerThermalParams::vendor_c_2u(),
        ]
    }

    /// Deterministic pseudo-input wiggle, no RNG needed.
    fn wiggle(step: usize, scale: f64, offset: f64) -> f64 {
        offset + scale * ((step as f64 * 0.7).sin() + 0.3 * (step as f64 * 0.13).cos())
    }

    #[test]
    fn bank_matches_object_model_bit_for_bit() {
        let mut bank = CaseBank::new();
        let mut objs = Vec::new();
        for params in vendors() {
            bank.push(&params, 18.0);
            objs.push(ServerCaseThermal::new(params, 18.0));
        }
        for step in 0..3_000 {
            for (i, obj) in objs.iter_mut().enumerate() {
                let intake = wiggle(step + i, 12.0, -4.0);
                let cpu_w = wiggle(step, 20.0, 40.0).max(0.0);
                let total_w = cpu_w + wiggle(step, 30.0, 60.0).max(0.0);
                obj.step(60.0, intake, cpu_w, total_w);
                bank.step_one(i, 60.0, intake, cpu_w, total_w);
                assert_eq!(
                    obj.cpu_temp_c().to_bits(),
                    bank.cpu_temp_c(i).to_bits(),
                    "cpu diverged at step {step} host {i}"
                );
                assert_eq!(
                    obj.case_temp_c().to_bits(),
                    bank.case_temp_c(i).to_bits(),
                    "case diverged at step {step} host {i}"
                );
                assert_eq!(obj.hdd_temp_c().to_bits(), bank.hdd_temp_c(i).to_bits());
            }
        }
    }

    #[test]
    fn negative_other_power_clamps_like_object_model() {
        // total < cpu: the non-CPU share clamps to zero in both models.
        let params = ServerThermalParams::vendor_b_sff();
        let mut obj = ServerCaseThermal::new(params.clone(), 18.0);
        let mut bank = CaseBank::new();
        bank.push(&params, 18.0);
        for _ in 0..500 {
            obj.step(60.0, -8.0, 50.0, 30.0);
            bank.step_one(0, 60.0, -8.0, 50.0, 30.0);
        }
        assert_eq!(obj.cpu_temp_c().to_bits(), bank.cpu_temp_c(0).to_bits());
        assert_eq!(obj.case_temp_c().to_bits(), bank.case_temp_c(0).to_bits());
    }

    #[test]
    fn dt_changes_reprime_the_integrator_cache() {
        let params = ServerThermalParams::vendor_a_tower();
        let mut obj = ServerCaseThermal::new(params.clone(), 18.0);
        let mut bank = CaseBank::new();
        bank.push(&params, 18.0);
        // Alternate step widths: the cache must refresh, not reuse stale
        // substep constants.
        for step in 0..400 {
            let dt = if step % 3 == 0 { 60.0 } else { 17.5 };
            obj.step(dt, -2.0, 30.0, 80.0);
            bank.step_one(0, dt, -2.0, 30.0, 80.0);
            assert_eq!(obj.cpu_temp_c().to_bits(), bank.cpu_temp_c(0).to_bits());
        }
    }

    #[test]
    fn zero_dt_is_a_no_op() {
        let params = ServerThermalParams::vendor_c_2u();
        let mut bank = CaseBank::new();
        bank.push(&params, 21.0);
        bank.step_one(0, 0.0, -20.0, 100.0, 200.0);
        assert_eq!(bank.cpu_temp_c(0), 21.0);
        assert_eq!(bank.case_temp_c(0), 21.0);
    }

    #[test]
    fn pushing_after_stepping_keeps_existing_rows_exact() {
        // A host added later must not disturb earlier rows, and the new row
        // must integrate exactly (the dt cache is invalidated by push).
        let a = ServerThermalParams::vendor_a_tower();
        let c = ServerThermalParams::vendor_c_2u();
        let mut obj_a = ServerCaseThermal::new(a.clone(), 18.0);
        let mut obj_c = ServerCaseThermal::new(c.clone(), 18.0);
        let mut bank = CaseBank::new();
        bank.push(&a, 18.0);
        for _ in 0..50 {
            obj_a.step(60.0, -5.0, 20.0, 70.0);
            bank.step_one(0, 60.0, -5.0, 20.0, 70.0);
        }
        bank.push(&c, 18.0);
        for _ in 0..50 {
            obj_a.step(60.0, -5.0, 20.0, 70.0);
            obj_c.step(60.0, 21.0, 60.0, 200.0);
            bank.step_one(0, 60.0, -5.0, 20.0, 70.0);
            bank.step_one(1, 60.0, 21.0, 60.0, 200.0);
        }
        assert_eq!(obj_a.cpu_temp_c().to_bits(), bank.cpu_temp_c(0).to_bits());
        assert_eq!(obj_c.cpu_temp_c().to_bits(), bank.cpu_temp_c(1).to_bits());
    }
}
