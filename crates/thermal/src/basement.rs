//! The control-group environment: the department's basement shelter.
//!
//! Per §3.4 the basement doubles as a civil-protection shelter and runs
//! "stable, office-type air conditioning", i.e. conditions well within
//! equipment specifications. We model a setpoint-tracking HVAC loop with a
//! small dead band, a mild sensitivity to the IT load (nine machines warm
//! the room slightly between compressor cycles), and essentially no coupling
//! to outside weather.

use frostlab_climate::weather::WeatherSample;

use crate::enclosure::{Enclosure, EnclosureState};

/// The basement control environment.
#[derive(Debug, Clone)]
pub struct Basement {
    /// HVAC setpoint, °C.
    setpoint_c: f64,
    /// Controlled RH level, %.
    rh_setpoint_pct: f64,
    air_temp_c: f64,
    rh_pct: f64,
    /// Proportional gain of the HVAC loop toward the setpoint, 1/s.
    hvac_gain: f64,
    /// Temperature rise per watt of IT load between HVAC corrections, K/W.
    load_sensitivity_k_w: f64,
    /// Phase accumulator for the slow compressor-cycle wobble.
    phase: f64,
}

impl Basement {
    /// Standard office conditioning: 21 °C, 40 % RH.
    pub fn new() -> Self {
        Basement {
            setpoint_c: 21.0,
            rh_setpoint_pct: 40.0,
            air_temp_c: 21.0,
            rh_pct: 40.0,
            hvac_gain: 1.0 / 900.0,
            load_sensitivity_k_w: 0.001,
            phase: 0.0,
        }
    }

    /// Custom setpoints (used by the ablation studies).
    pub fn with_setpoints(temp_c: f64, rh_pct: f64) -> Self {
        Basement {
            setpoint_c: temp_c,
            rh_setpoint_pct: rh_pct,
            air_temp_c: temp_c,
            rh_pct,
            ..Basement::new()
        }
    }

    /// The HVAC temperature setpoint.
    pub fn setpoint_c(&self) -> f64 {
        self.setpoint_c
    }
}

impl Default for Basement {
    fn default() -> Self {
        Self::new()
    }
}

impl Enclosure for Basement {
    fn step(&mut self, dt_secs: f64, _outside: &WeatherSample, it_power_w: f64) {
        // Compressor cycling: a slow ±0.4 K wobble around the setpoint.
        self.phase = (self.phase + dt_secs / 1800.0) % std::f64::consts::TAU;
        let wobble = 0.4 * self.phase.sin();
        let target = self.setpoint_c + wobble + it_power_w * self.load_sensitivity_k_w;
        let k = (-dt_secs * self.hvac_gain * 60.0).exp();
        self.air_temp_c = target + (self.air_temp_c - target) * k;
        // RH is held with similar stability.
        let rh_target = self.rh_setpoint_pct + 1.0 * self.phase.cos();
        self.rh_pct = rh_target + (self.rh_pct - rh_target) * k;
    }

    fn state(&self) -> EnclosureState {
        EnclosureState {
            air_temp_c: self.air_temp_c,
            air_rh_pct: self.rh_pct,
        }
    }

    fn name(&self) -> &'static str {
        "basement"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frostlab_simkern::time::SimTime;

    fn outside_blizzard() -> WeatherSample {
        WeatherSample {
            t: SimTime::ZERO,
            temp_c: -25.0,
            rh_pct: 85.0,
            wind_ms: 12.0,
            solar_w_m2: 0.0,
            cloud: 1.0,
        }
    }

    #[test]
    fn basement_ignores_weather() {
        let mut b = Basement::new();
        for _ in 0..1_000 {
            b.step(60.0, &outside_blizzard(), 900.0);
        }
        let s = b.state();
        assert!((s.air_temp_c - 21.0).abs() < 1.5, "temp {}", s.air_temp_c);
        assert!((s.air_rh_pct - 40.0).abs() < 3.0, "rh {}", s.air_rh_pct);
    }

    #[test]
    fn basement_stays_in_spec_band() {
        let mut b = Basement::new();
        let mut min = f64::MAX;
        let mut max = f64::MIN;
        for _ in 0..5_000 {
            b.step(60.0, &outside_blizzard(), 900.0);
            min = min.min(b.state().air_temp_c);
            max = max.max(b.state().air_temp_c);
        }
        // ASHRAE-recommended envelope is 18–27 °C; the shelter sits well inside.
        assert!(min > 18.0 && max < 27.0, "band [{min}, {max}]");
        // And it is *stable*: total swing under 2 K.
        assert!(max - min < 2.0, "swing {}", max - min);
    }

    #[test]
    fn custom_setpoints() {
        let mut b = Basement::with_setpoints(18.0, 50.0);
        for _ in 0..1_000 {
            b.step(60.0, &outside_blizzard(), 0.0);
        }
        assert!((b.state().air_temp_c - 18.0).abs() < 1.0);
        assert!((b.state().air_rh_pct - 50.0).abs() < 3.0);
    }
}
