//! The [`Enclosure`] abstraction and the prototype's plastic-box shelter.
//!
//! The experiment ran equipment in three different environments: the tent on
//! the roof terrace, the basement shelter (control group), and — for the
//! prototype weekend — a generic PC "sandwiched between two hard plastic
//! boxes" that protected against snow but "did not really impede air flow or
//! contain any heat" (§3.1). The orchestrator treats all three uniformly
//! through this trait.

use frostlab_climate::psychro;
use frostlab_climate::weather::WeatherSample;

/// Instantaneous air state inside an enclosure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnclosureState {
    /// Air temperature around the equipment, °C.
    pub air_temp_c: f64,
    /// Relative humidity around the equipment, %.
    pub air_rh_pct: f64,
}

/// An environment that equipment lives in.
pub trait Enclosure {
    /// Advance the enclosure by `dt_secs` given the current outside weather
    /// and the total IT power dissipated inside it.
    fn step(&mut self, dt_secs: f64, outside: &WeatherSample, it_power_w: f64);

    /// Current internal air state.
    fn state(&self) -> EnclosureState;

    /// Display name for reports.
    fn name(&self) -> &'static str;
}

/// The prototype-weekend shelter: two plastic boxes that keep snow out but
/// neither block airflow nor retain heat. Inside air tracks outside air with
/// a short lag and a small machine-heat offset.
#[derive(Debug, Clone)]
pub struct PlasticBoxes {
    air_temp_c: f64,
    rh_pct: f64,
    /// Effective loss conductance, W/K. Very large: the boxes are open.
    ua_w_k: f64,
    /// Thermal capacity of the trapped air pocket, J/K.
    capacity_j_k: f64,
}

impl PlasticBoxes {
    /// Create the prototype shelter, initialized to the given outside state.
    pub fn new(initial: &WeatherSample) -> Self {
        PlasticBoxes {
            air_temp_c: initial.temp_c,
            rh_pct: initial.rh_pct,
            ua_w_k: 60.0,
            capacity_j_k: 6_000.0,
        }
    }
}

impl Enclosure for PlasticBoxes {
    fn step(&mut self, dt_secs: f64, outside: &WeatherSample, it_power_w: f64) {
        let t_inf = outside.temp_c + it_power_w / self.ua_w_k;
        let k = (-dt_secs * self.ua_w_k / self.capacity_j_k).exp();
        self.air_temp_c = t_inf + (self.air_temp_c - t_inf) * k;
        self.rh_pct = psychro::rh_after_heating(outside.temp_c, outside.rh_pct, self.air_temp_c);
    }

    fn state(&self) -> EnclosureState {
        EnclosureState {
            air_temp_c: self.air_temp_c,
            air_rh_pct: self.rh_pct,
        }
    }

    fn name(&self) -> &'static str {
        "plastic boxes"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frostlab_simkern::time::SimTime;

    fn wx(temp_c: f64, rh: f64) -> WeatherSample {
        WeatherSample {
            t: SimTime::ZERO,
            temp_c,
            rh_pct: rh,
            wind_ms: 3.0,
            solar_w_m2: 0.0,
            cloud: 0.8,
        }
    }

    #[test]
    fn boxes_track_outside_closely() {
        let out = wx(-10.0, 90.0);
        let mut b = PlasticBoxes::new(&out);
        // 120 W PC inside, one hour of stepping.
        for _ in 0..60 {
            b.step(60.0, &out, 120.0);
        }
        let s = b.state();
        // Offset = 120/60 = 2 K above outside.
        assert!((s.air_temp_c - (-8.0)).abs() < 0.1, "{}", s.air_temp_c);
        // Heated air ⇒ slightly drier than outside.
        assert!(s.air_rh_pct < 90.0);
        assert!(s.air_rh_pct > 60.0);
    }

    #[test]
    fn boxes_follow_a_cold_drop_quickly() {
        let mild = wx(-5.0, 85.0);
        let cold = wx(-15.0, 85.0);
        let mut b = PlasticBoxes::new(&mild);
        for _ in 0..30 {
            b.step(60.0, &mild, 120.0);
        }
        // Temperature drops outside; inside should follow within ~15 min
        // (tau = 6000/60 = 100 s).
        for _ in 0..15 {
            b.step(60.0, &cold, 120.0);
        }
        assert!(
            (b.state().air_temp_c - (-13.0)).abs() < 0.3,
            "{}",
            b.state().air_temp_c
        );
    }
}
