//! # frostlab-thermal
//!
//! Thermal substrate: the physics between the weather and the silicon.
//!
//! The paper's Fig. 3 is, at heart, a two-trace plot: outside air temperature
//! (SMEAR III) and tent-internal temperature (Lascar logger), with the tent
//! trace stepping downward as the authors fought the tent's surprising
//! ability to retain heat (reflective foil **R**, inner-tent removal **I**,
//! bottom-tarpaulin removal **B**, a desk fan **F**). This crate reproduces
//! that physics with lumped-capacitance (RC) models:
//!
//! * [`network`] — a small generic RC thermal-network solver with
//!   unconditionally stable exponential-Euler stepping;
//! * [`tent`] — the tent enclosure: fabric conductance, solar gain on the
//!   fabric (with/without foil), wind-driven ventilation through the modified
//!   openings, and the four documented modifications as config switches;
//! * [`basement`] — the control group's conditioned shelter (stable,
//!   office-type air, per §3.4);
//! * [`server_case`] — the in-chassis chain: enclosure air → case air → CPU
//!   and disks, each a first-order lag. This is what turns "−10 °C outside"
//!   into the paper's "CPU at −4 °C" reading;
//! * [`enclosure`] — the trait the experiment uses to treat tent, basement
//!   and the prototype's plastic boxes uniformly;
//! * [`bank`] — the fleet-scale struct-of-arrays chassis kernel: the same
//!   case/CPU physics as [`server_case`], stored as flat columns and stepped
//!   with zero per-tick allocations (bit-identical to the object model).
//!
//! All temperatures °C, powers W, conductances W/K, capacities J/K.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bank;
pub mod basement;
pub mod enclosure;
pub mod network;
pub mod server_case;
pub mod tent;

pub use bank::CaseBank;
pub use basement::Basement;
pub use enclosure::{Enclosure, EnclosureState, PlasticBoxes};
pub use network::RcNetwork;
pub use server_case::{ServerCaseThermal, ServerThermalParams};
pub use tent::{Tent, TentConfig, TentParams};
