//! Generic lumped-capacitance (RC) thermal network.
//!
//! Nodes carry a heat capacity (J/K) and an injected power (W); edges carry a
//! conductance (W/K) either between two capacitive nodes or from a node to a
//! *boundary* (a prescribed temperature such as outside air). Integration
//! uses **exponential Euler** per node: over a step the node relaxes toward
//! its instantaneous steady state with its own time constant,
//!
//! ```text
//! T ← T∞ + (T − T∞)·exp(−dt·G/C),   T∞ = (Σ G_i·T_i + P) / Σ G_i
//! ```
//!
//! which is unconditionally stable, exact for a single node with constant
//! inputs, and accurate for the mildly coupled networks used here (automatic
//! sub-stepping keeps cross-node coupling honest).

/// Index of a capacitive node in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub usize);

/// Index of a boundary (prescribed-temperature) terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BoundaryId(pub usize);

#[derive(Debug, Clone)]
struct Node {
    capacity_j_k: f64,
    temp_c: f64,
    power_w: f64,
}

#[derive(Debug, Clone)]
enum EdgeKind {
    NodeNode(NodeId, NodeId),
    NodeBoundary(NodeId, BoundaryId),
}

#[derive(Debug, Clone)]
struct Edge {
    kind: EdgeKind,
    conductance_w_k: f64,
}

/// A lumped RC thermal network. See module docs.
#[derive(Debug, Clone, Default)]
pub struct RcNetwork {
    nodes: Vec<Node>,
    boundaries: Vec<f64>,
    edges: Vec<Edge>,
}

impl RcNetwork {
    /// Create an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a capacitive node with initial temperature.
    ///
    /// # Panics
    /// Panics if `capacity_j_k` is not strictly positive.
    pub fn add_node(&mut self, capacity_j_k: f64, initial_temp_c: f64) -> NodeId {
        assert!(capacity_j_k > 0.0, "node capacity must be positive");
        self.nodes.push(Node {
            capacity_j_k,
            temp_c: initial_temp_c,
            power_w: 0.0,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Add a boundary terminal with a prescribed temperature.
    pub fn add_boundary(&mut self, temp_c: f64) -> BoundaryId {
        self.boundaries.push(temp_c);
        BoundaryId(self.boundaries.len() - 1)
    }

    /// Connect two capacitive nodes with a conductance.
    pub fn connect(&mut self, a: NodeId, b: NodeId, conductance_w_k: f64) {
        assert!(conductance_w_k >= 0.0);
        self.edges.push(Edge {
            kind: EdgeKind::NodeNode(a, b),
            conductance_w_k,
        });
    }

    /// Connect a node to a boundary with a conductance.
    pub fn connect_boundary(&mut self, n: NodeId, b: BoundaryId, conductance_w_k: f64) {
        assert!(conductance_w_k >= 0.0);
        self.edges.push(Edge {
            kind: EdgeKind::NodeBoundary(n, b),
            conductance_w_k,
        });
    }

    /// Set the heat injected into a node (W). Persists until changed.
    pub fn set_power(&mut self, n: NodeId, power_w: f64) {
        self.nodes[n.0].power_w = power_w;
    }

    /// Update a boundary's prescribed temperature.
    pub fn set_boundary_temp(&mut self, b: BoundaryId, temp_c: f64) {
        self.boundaries[b.0] = temp_c;
    }

    /// Update an edge's conductance (edges are indexed in creation order).
    pub fn set_conductance(&mut self, edge_index: usize, conductance_w_k: f64) {
        assert!(conductance_w_k >= 0.0);
        self.edges[edge_index].conductance_w_k = conductance_w_k;
    }

    /// Current temperature of a node.
    pub fn temp(&self, n: NodeId) -> f64 {
        self.nodes[n.0].temp_c
    }

    /// Force a node's temperature (e.g. initialization after a power cycle).
    pub fn set_temp(&mut self, n: NodeId, temp_c: f64) {
        self.nodes[n.0].temp_c = temp_c;
    }

    /// Smallest node time constant C/ΣG — used for sub-step sizing.
    fn min_time_constant(&self) -> f64 {
        let mut gsum = vec![0.0f64; self.nodes.len()];
        for e in &self.edges {
            match e.kind {
                EdgeKind::NodeNode(a, b) => {
                    gsum[a.0] += e.conductance_w_k;
                    gsum[b.0] += e.conductance_w_k;
                }
                EdgeKind::NodeBoundary(n, _) => gsum[n.0] += e.conductance_w_k,
            }
        }
        self.nodes
            .iter()
            .zip(&gsum)
            .filter(|(_, &g)| g > 0.0)
            .map(|(n, &g)| n.capacity_j_k / g)
            .fold(f64::INFINITY, f64::min)
    }

    /// Advance the network by `dt_secs`, sub-stepping for accuracy.
    pub fn step(&mut self, dt_secs: f64) {
        assert!(dt_secs >= 0.0, "negative time step");
        if dt_secs == 0.0 || self.nodes.is_empty() {
            return;
        }
        // Sub-step at a quarter of the fastest time constant so inter-node
        // coupling (handled with frozen neighbour temperatures per sub-step)
        // stays accurate.
        let tau = self.min_time_constant();
        let max_sub = if tau.is_finite() {
            (tau / 4.0).max(1e-3)
        } else {
            dt_secs
        };
        let n_sub = (dt_secs / max_sub).ceil().max(1.0) as usize;
        let h = dt_secs / n_sub as f64;
        for _ in 0..n_sub {
            self.substep(h);
        }
    }

    fn substep(&mut self, h: f64) {
        let n = self.nodes.len();
        let mut gsum = vec![0.0f64; n];
        let mut gtsum = vec![0.0f64; n];
        for e in &self.edges {
            match e.kind {
                EdgeKind::NodeNode(a, b) => {
                    gsum[a.0] += e.conductance_w_k;
                    gtsum[a.0] += e.conductance_w_k * self.nodes[b.0].temp_c;
                    gsum[b.0] += e.conductance_w_k;
                    gtsum[b.0] += e.conductance_w_k * self.nodes[a.0].temp_c;
                }
                EdgeKind::NodeBoundary(nd, bd) => {
                    gsum[nd.0] += e.conductance_w_k;
                    gtsum[nd.0] += e.conductance_w_k * self.boundaries[bd.0];
                }
            }
        }
        for i in 0..n {
            let node = &mut self.nodes[i];
            if gsum[i] <= 0.0 {
                // Pure integrator: adiabatic node.
                node.temp_c += node.power_w * h / node.capacity_j_k;
                continue;
            }
            let t_inf = (gtsum[i] + node.power_w) / gsum[i];
            let k = (-h * gsum[i] / node.capacity_j_k).exp();
            node.temp_c = t_inf + (node.temp_c - t_inf) * k;
        }
    }

    /// Steady-state temperature of every node under the current inputs,
    /// found by relaxation (used by tests and sizing tools).
    pub fn steady_state(&self) -> Vec<f64> {
        let mut net = self.clone();
        // Relax with large steps until movement stops.
        for _ in 0..10_000 {
            let before: Vec<f64> = net.nodes.iter().map(|n| n.temp_c).collect();
            net.step(3600.0);
            let moved = net
                .nodes
                .iter()
                .zip(&before)
                .map(|(n, b)| (n.temp_c - b).abs())
                .fold(0.0f64, f64::max);
            if moved < 1e-9 {
                break;
            }
        }
        net.nodes.iter().map(|n| n.temp_c).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_relaxes_to_boundary() {
        let mut net = RcNetwork::new();
        let n = net.add_node(1000.0, 20.0);
        let amb = net.add_boundary(-10.0);
        net.connect_boundary(n, amb, 10.0); // tau = 100 s
        net.step(10_000.0);
        assert!((net.temp(n) + 10.0).abs() < 1e-6, "{}", net.temp(n));
    }

    #[test]
    fn exponential_time_constant() {
        let mut net = RcNetwork::new();
        let n = net.add_node(1000.0, 1.0);
        let amb = net.add_boundary(0.0);
        net.connect_boundary(n, amb, 10.0); // tau = 100 s
        net.step(100.0); // one time constant: T should be e^-1
        assert!(
            (net.temp(n) - (-1.0f64).exp()).abs() < 1e-3,
            "{}",
            net.temp(n)
        );
    }

    #[test]
    fn heated_node_steady_state_offset() {
        // ΔT = P / UA.
        let mut net = RcNetwork::new();
        let n = net.add_node(5000.0, 0.0);
        let amb = net.add_boundary(-20.0);
        net.connect_boundary(n, amb, 50.0);
        net.set_power(n, 1000.0);
        net.step(100_000.0);
        assert!((net.temp(n) - 0.0).abs() < 1e-6, "{}", net.temp(n)); // -20 + 1000/50
    }

    #[test]
    fn two_node_chain_steady_state() {
        // boundary —G1— A —G2— B, power into B.
        let mut net = RcNetwork::new();
        let a = net.add_node(1000.0, 0.0);
        let b = net.add_node(500.0, 0.0);
        let amb = net.add_boundary(10.0);
        net.connect_boundary(a, amb, 20.0);
        net.connect(a, b, 5.0);
        net.set_power(b, 100.0);
        let ss = net.steady_state();
        // All of B's 100 W flows through both edges:
        // T_a = 10 + 100/20 = 15; T_b = 15 + 100/5 = 35.
        assert!((ss[0] - 15.0).abs() < 1e-3, "a = {}", ss[0]);
        assert!((ss[1] - 35.0).abs() < 1e-3, "b = {}", ss[1]);
    }

    #[test]
    fn adiabatic_node_integrates_power() {
        let mut net = RcNetwork::new();
        let n = net.add_node(2000.0, 0.0);
        net.set_power(n, 100.0);
        net.step(40.0);
        assert!((net.temp(n) - 2.0).abs() < 1e-9); // 100*40/2000
    }

    #[test]
    fn step_is_stable_for_stiff_network() {
        // A fast node (tau = 1 s) stepped with a huge dt must not blow up.
        let mut net = RcNetwork::new();
        let n = net.add_node(10.0, 100.0);
        let amb = net.add_boundary(0.0);
        net.connect_boundary(n, amb, 10.0);
        net.step(86_400.0);
        assert!(net.temp(n).abs() < 1e-6);
        assert!(net.temp(n).is_finite());
    }

    #[test]
    fn conductance_update_changes_equilibrium() {
        let mut net = RcNetwork::new();
        let n = net.add_node(1000.0, 0.0);
        let amb = net.add_boundary(0.0);
        net.connect_boundary(n, amb, 10.0); // edge 0
        net.set_power(n, 100.0);
        net.step(50_000.0);
        assert!((net.temp(n) - 10.0).abs() < 1e-6);
        net.set_conductance(0, 40.0);
        net.step(50_000.0);
        assert!((net.temp(n) - 2.5).abs() < 1e-6);
    }

    #[test]
    fn energy_flows_downhill() {
        // Without power injection, node temperatures stay bracketed by
        // initial node temps and boundary temps (maximum principle).
        let mut net = RcNetwork::new();
        let a = net.add_node(100.0, 50.0);
        let b = net.add_node(100.0, -30.0);
        let amb = net.add_boundary(5.0);
        net.connect(a, b, 3.0);
        net.connect_boundary(a, amb, 1.0);
        net.connect_boundary(b, amb, 1.0);
        for _ in 0..1000 {
            net.step(10.0);
            for t in [net.temp(a), net.temp(b)] {
                assert!((-30.0..=50.0).contains(&t), "escaped bracket: {t}");
            }
        }
        assert!((net.temp(a) - 5.0).abs() < 0.1);
        assert!((net.temp(b) - 5.0).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        RcNetwork::new().add_node(0.0, 0.0);
    }
}
