//! In-chassis thermal chain: enclosure air → case air → CPU / disks.
//!
//! This is the model that turns "−10 °C in the tent" into the paper's
//! reported "CPU had been operating in temperatures as low as −4 °C": the
//! case air runs a few kelvin above intake (set by the chassis airflow), the
//! CPU runs `R_th·P_cpu` above case air, and disks ride a fixed offset above
//! case air. Each stage is a first-order lag solved on an [`RcNetwork`].
//!
//! Vendor B's small-form-factor workstations were "considered unreliable …
//! due to bad air flow circulation" (§3); their parameter set models that
//! with a weak case airflow, which pushes component temperatures up — and
//! lets the experiment ask the paper's fourth research question (does the
//! cold alleviate the known problem?).

use crate::network::{BoundaryId, NodeId, RcNetwork};

/// Thermal parameters for one chassis design.
#[derive(Debug, Clone)]
pub struct ServerThermalParams {
    /// Conductance from case air to intake air (chassis airflow), W/K.
    pub case_airflow_w_k: f64,
    /// Thermal capacity of the case air + structure, J/K.
    pub case_capacity_j_k: f64,
    /// CPU heatsink thermal resistance, K/W.
    pub cpu_rth_k_w: f64,
    /// CPU + heatsink capacity, J/K.
    pub cpu_capacity_j_k: f64,
    /// Disk temperature offset above case air, K.
    pub hdd_offset_k: f64,
}

impl ServerThermalParams {
    /// Vendor A: medium-tower clone desktops, decent airflow.
    pub fn vendor_a_tower() -> Self {
        ServerThermalParams {
            case_airflow_w_k: 15.0,
            case_capacity_j_k: 4_000.0,
            cpu_rth_k_w: 0.35,
            cpu_capacity_j_k: 450.0,
            hdd_offset_k: 4.0,
        }
    }

    /// Vendor B: small-form-factor workstations with the known airflow
    /// problem — weak case airflow, hot components.
    pub fn vendor_b_sff() -> Self {
        ServerThermalParams {
            case_airflow_w_k: 6.0,
            case_capacity_j_k: 2_000.0,
            cpu_rth_k_w: 0.50,
            cpu_capacity_j_k: 350.0,
            hdd_offset_k: 7.0,
        }
    }

    /// Vendor C: 2U rack servers with strong forced airflow.
    pub fn vendor_c_2u() -> Self {
        ServerThermalParams {
            case_airflow_w_k: 30.0,
            case_capacity_j_k: 8_000.0,
            cpu_rth_k_w: 0.25,
            cpu_capacity_j_k: 600.0,
            hdd_offset_k: 5.0,
        }
    }
}

/// Live thermal state of one server chassis.
#[derive(Debug, Clone)]
pub struct ServerCaseThermal {
    params: ServerThermalParams,
    net: RcNetwork,
    case_node: NodeId,
    cpu_node: NodeId,
    intake: BoundaryId,
}

impl ServerCaseThermal {
    /// Build the chassis model, starting in equilibrium with `intake_c`.
    pub fn new(params: ServerThermalParams, intake_c: f64) -> Self {
        let mut net = RcNetwork::new();
        let case_node = net.add_node(params.case_capacity_j_k, intake_c);
        let cpu_node = net.add_node(params.cpu_capacity_j_k, intake_c);
        let intake = net.add_boundary(intake_c);
        net.connect_boundary(case_node, intake, params.case_airflow_w_k);
        net.connect(case_node, cpu_node, 1.0 / params.cpu_rth_k_w);
        ServerCaseThermal {
            params,
            net,
            case_node,
            cpu_node,
            intake,
        }
    }

    /// Advance by `dt_secs` with the given intake-air temperature, CPU power
    /// and total chassis power (CPU power is part of the total; the non-CPU
    /// remainder heats the case air directly).
    pub fn step(&mut self, dt_secs: f64, intake_c: f64, cpu_power_w: f64, total_power_w: f64) {
        let other_w = (total_power_w - cpu_power_w).max(0.0);
        self.net.set_boundary_temp(self.intake, intake_c);
        self.net.set_power(self.case_node, other_w);
        self.net.set_power(self.cpu_node, cpu_power_w);
        self.net.step(dt_secs);
    }

    /// Case-internal air temperature, °C.
    pub fn case_temp_c(&self) -> f64 {
        self.net.temp(self.case_node)
    }

    /// CPU die temperature as the motherboard sensor would report it, °C.
    pub fn cpu_temp_c(&self) -> f64 {
        self.net.temp(self.cpu_node)
    }

    /// Disk temperature (S.M.A.R.T. attribute 194), °C.
    pub fn hdd_temp_c(&self) -> f64 {
        self.case_temp_c() + self.params.hdd_offset_k
    }

    /// Reset all nodes to the intake temperature (power-off soak).
    pub fn soak_to(&mut self, temp_c: f64) {
        self.net.set_temp(self.case_node, temp_c);
        self.net.set_temp(self.cpu_node, temp_c);
        self.net.set_boundary_temp(self.intake, temp_c);
    }

    /// The parameter set in use.
    pub fn params(&self) -> &ServerThermalParams {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn settle(s: &mut ServerCaseThermal, intake: f64, cpu_w: f64, total_w: f64) {
        for _ in 0..600 {
            s.step(30.0, intake, cpu_w, total_w);
        }
    }

    #[test]
    fn paper_cpu_reading_reproduced() {
        // Prototype weekend: ambient ≈ −10 °C, idle generic PC.
        // The paper observed CPU ≈ −4 °C.
        let mut s = ServerCaseThermal::new(ServerThermalParams::vendor_a_tower(), -10.0);
        settle(&mut s, -10.0, 12.0, 70.0);
        let cpu = s.cpu_temp_c();
        assert!((-7.0..=-1.0).contains(&cpu), "idle CPU at {cpu} °C");
    }

    #[test]
    fn load_raises_cpu_temperature() {
        let mut s = ServerCaseThermal::new(ServerThermalParams::vendor_a_tower(), 20.0);
        settle(&mut s, 20.0, 15.0, 90.0);
        let idle = s.cpu_temp_c();
        settle(&mut s, 20.0, 65.0, 140.0);
        let load = s.cpu_temp_c();
        assert!(load > idle + 10.0, "idle {idle}, load {load}");
    }

    #[test]
    fn vendor_b_runs_hotter_than_a() {
        let mut a = ServerCaseThermal::new(ServerThermalParams::vendor_a_tower(), 21.0);
        let mut b = ServerCaseThermal::new(ServerThermalParams::vendor_b_sff(), 21.0);
        settle(&mut a, 21.0, 60.0, 120.0);
        settle(&mut b, 21.0, 60.0, 120.0);
        assert!(
            b.cpu_temp_c() > a.cpu_temp_c() + 8.0,
            "B {} vs A {}",
            b.cpu_temp_c(),
            a.cpu_temp_c()
        );
    }

    #[test]
    fn cold_intake_alleviates_vendor_b_heat_problem() {
        // Research question 4: vendor B in the basement (21 °C) vs the tent
        // (−5 °C): the cold should pull the hot SFF CPUs well below their
        // indoor operating point.
        let mut indoors = ServerCaseThermal::new(ServerThermalParams::vendor_b_sff(), 21.0);
        let mut tent = ServerCaseThermal::new(ServerThermalParams::vendor_b_sff(), -5.0);
        settle(&mut indoors, 21.0, 60.0, 120.0);
        settle(&mut tent, -5.0, 60.0, 120.0);
        assert!(tent.cpu_temp_c() < indoors.cpu_temp_c() - 20.0);
    }

    #[test]
    fn case_between_intake_and_cpu() {
        let mut s = ServerCaseThermal::new(ServerThermalParams::vendor_c_2u(), 10.0);
        settle(&mut s, 10.0, 80.0, 250.0);
        assert!(s.case_temp_c() > 10.0);
        assert!(s.cpu_temp_c() > s.case_temp_c());
        assert!(s.hdd_temp_c() > s.case_temp_c());
    }

    #[test]
    fn soak_resets_state() {
        let mut s = ServerCaseThermal::new(ServerThermalParams::vendor_a_tower(), 20.0);
        settle(&mut s, 20.0, 60.0, 130.0);
        s.soak_to(-15.0);
        assert_eq!(s.cpu_temp_c(), -15.0);
        assert_eq!(s.case_temp_c(), -15.0);
    }

    #[test]
    fn thermal_response_is_minutes_not_hours() {
        // After an intake step change, the CPU should be most of the way to
        // the new equilibrium within ~15 minutes.
        let mut s = ServerCaseThermal::new(ServerThermalParams::vendor_a_tower(), 20.0);
        settle(&mut s, 20.0, 15.0, 80.0);
        let before = s.cpu_temp_c();
        for _ in 0..30 {
            s.step(30.0, 0.0, 15.0, 80.0);
        }
        let after_15min = s.cpu_temp_c();
        assert!(
            before - after_15min > 12.0,
            "only moved {} K",
            before - after_15min
        );
    }
}
