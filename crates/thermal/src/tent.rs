//! The tent: a three-person camping tent on the roof terrace.
//!
//! Physics (single lumped air node, exponential-Euler stepping):
//!
//! ```text
//! C·dT/dt = P_it + Q_solar − UA_total·(T_in − T_out)
//!
//! Q_solar  = α·A_proj·GHI                (α drops when the foil goes on)
//! UA_total = UA_fabric + ṁ·c_p           (fabric conduction + ventilation)
//! ṁ        = ρ·(A_vent·k_wind·v + V̇_fan) + ρ·A_vent·k_stack·√max(ΔT,0)
//! ```
//!
//! The paper's four interventions map onto parameters:
//!
//! | mark | intervention                       | effect                                   |
//! |------|------------------------------------|------------------------------------------|
//! | R    | reflective rescue-foil cover       | solar absorptance α: 0.65 → 0.25          |
//! | I    | inner tent cut open / removed      | fabric conductance up (one layer less)    |
//! | B    | bottom tarpaulin partially removed | ventilation opening area up (floor flow)  |
//! | F    | tabletop motorized fan installed   | constant forced volume flow added         |
//!
//! plus the half-open front door, which the authors settled on as the normal
//! operating position late in the campaign.
//!
//! Internal relative humidity follows from psychrometrics: the tent is
//! ventilated with outside air whose absolute moisture content is unchanged,
//! so RH inside is the outside vapor pressure referred to the warmer inside
//! temperature, low-pass filtered by the tent's air-exchange time. This is
//! exactly the behaviour in Fig. 4 — the tent "has been able to retain more
//! stable relative humidities than outside air", with variance growing as
//! the airflow modifications landed.

use frostlab_climate::psychro;
use frostlab_climate::weather::WeatherSample;

use crate::enclosure::{Enclosure, EnclosureState};

/// Which of the paper's modifications are currently applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TentConfig {
    /// R — reflective foil cover installed.
    pub foil: bool,
    /// I — inner tent removed.
    pub inner_removed: bool,
    /// B — bottom tarpaulin partially removed.
    pub tarpaulin_removed: bool,
    /// Front outer door left half-open.
    pub door_half_open: bool,
    /// F — tabletop fan running.
    pub fan: bool,
}

impl TentConfig {
    /// The configuration at the start of the normal phase (everything
    /// closed, no foil).
    pub fn initial() -> Self {
        TentConfig::default()
    }

    /// The final operating configuration (all interventions applied).
    pub fn fully_modified() -> Self {
        TentConfig {
            foil: true,
            inner_removed: true,
            tarpaulin_removed: true,
            door_half_open: true,
            fan: true,
        }
    }
}

/// Physical parameters of the tent model.
#[derive(Debug, Clone)]
pub struct TentParams {
    /// Thermal capacity of the tent air + light contents, J/K.
    pub capacity_j_k: f64,
    /// Fabric conductance with the inner tent in place, W/K.
    pub ua_fabric_double_w_k: f64,
    /// Fabric conductance with the inner tent removed, W/K.
    pub ua_fabric_single_w_k: f64,
    /// Projected fabric area facing the sun, m².
    pub solar_area_m2: f64,
    /// Solar absorptance of the bare fabric.
    pub absorptance_bare: f64,
    /// Solar absorptance with the reflective foil cover.
    pub absorptance_foil: f64,
    /// Leakage opening area with everything closed, m².
    pub vent_area_closed_m2: f64,
    /// Additional opening area once the tarpaulin is (partially) removed, m².
    pub vent_area_tarpaulin_m2: f64,
    /// Additional opening area from the half-open front door, m².
    pub vent_area_door_m2: f64,
    /// Wind-to-through-flow coupling coefficient (dimensionless).
    pub wind_coupling: f64,
    /// Stack (buoyancy) ventilation coefficient, (m/s)/√K.
    pub stack_coupling: f64,
    /// Effective volume flow of the desk fan, m³/s.
    pub fan_flow_m3_s: f64,
}

impl Default for TentParams {
    fn default() -> Self {
        TentParams {
            capacity_j_k: 150_000.0,
            ua_fabric_double_w_k: 35.0,
            ua_fabric_single_w_k: 52.0,
            solar_area_m2: 2.5,
            absorptance_bare: 0.65,
            absorptance_foil: 0.25,
            vent_area_closed_m2: 0.006,
            vent_area_tarpaulin_m2: 0.06,
            vent_area_door_m2: 0.04,
            wind_coupling: 0.35,
            stack_coupling: 0.10,
            fan_flow_m3_s: 0.055,
        }
    }
}

/// Air density (kg/m³) and heat capacity (J/(kg·K)) used in the flow terms.
const RHO_AIR: f64 = 1.27; // at ~0 °C
const CP_AIR: f64 = 1005.0;

/// The tent enclosure model. See module docs.
#[derive(Debug, Clone)]
pub struct Tent {
    params: TentParams,
    config: TentConfig,
    air_temp_c: f64,
    rh_pct: f64,
}

impl Tent {
    /// Erect the tent with the given parameters, initialized to the outside
    /// state (it starts empty and cold).
    pub fn new(params: TentParams, config: TentConfig, initial: &WeatherSample) -> Self {
        Tent {
            params,
            config,
            air_temp_c: initial.temp_c,
            rh_pct: initial.rh_pct,
        }
    }

    /// Current modification state.
    pub fn config(&self) -> TentConfig {
        self.config
    }

    /// Apply or change modifications (the R/I/B/F events).
    pub fn set_config(&mut self, config: TentConfig) {
        self.config = config;
    }

    /// Physical parameters.
    pub fn params(&self) -> &TentParams {
        &self.params
    }

    /// Total open ventilation area for the current configuration, m².
    fn vent_area(&self) -> f64 {
        let p = &self.params;
        let mut a = p.vent_area_closed_m2;
        if self.config.tarpaulin_removed {
            a += p.vent_area_tarpaulin_m2;
        }
        if self.config.door_half_open {
            a += p.vent_area_door_m2;
        }
        a
    }

    /// Total loss conductance UA (W/K) for the given outside conditions.
    pub fn ua_total(&self, wind_ms: f64, delta_t_k: f64) -> f64 {
        let p = &self.params;
        let fabric = if self.config.inner_removed {
            p.ua_fabric_single_w_k
        } else {
            p.ua_fabric_double_w_k
        };
        let area = self.vent_area();
        let wind_flow = area * p.wind_coupling * wind_ms.max(0.0);
        let stack_flow = area * p.stack_coupling * delta_t_k.max(0.0).sqrt();
        let fan_flow = if self.config.fan {
            p.fan_flow_m3_s
        } else {
            0.0
        };
        fabric + RHO_AIR * CP_AIR * (wind_flow + stack_flow + fan_flow)
    }

    /// Solar heat input (W) for the given irradiance.
    pub fn solar_gain_w(&self, ghi_w_m2: f64) -> f64 {
        let alpha = if self.config.foil {
            self.params.absorptance_foil
        } else {
            self.params.absorptance_bare
        };
        alpha * self.params.solar_area_m2 * ghi_w_m2
    }

    /// Air-exchange low-pass time constant for humidity, s.
    fn rh_tau(&self, ua: f64) -> f64 {
        // More ventilation ⇒ faster RH tracking. Map UA (W/K) to a time
        // constant between ~25 min (closed) and ~4 min (fully open).
        let vent = (ua - self.params.ua_fabric_double_w_k).max(1.0);
        (150_000.0 / (vent * 100.0)).clamp(240.0, 1500.0)
    }
}

impl Enclosure for Tent {
    fn step(&mut self, dt_secs: f64, outside: &WeatherSample, it_power_w: f64) {
        let dt_k = self.air_temp_c - outside.temp_c;
        let ua = self.ua_total(outside.wind_ms, dt_k);
        let q = it_power_w + self.solar_gain_w(outside.solar_w_m2);
        let t_inf = outside.temp_c + q / ua;
        let k = (-dt_secs * ua / self.params.capacity_j_k).exp();
        self.air_temp_c = t_inf + (self.air_temp_c - t_inf) * k;

        // Humidity: ventilation brings in outside moisture; referred to the
        // inside temperature, then low-pass filtered by air exchange.
        let rh_target = psychro::rh_after_heating(outside.temp_c, outside.rh_pct, self.air_temp_c);
        let kr = (-dt_secs / self.rh_tau(ua)).exp();
        self.rh_pct = rh_target + (self.rh_pct - rh_target) * kr;
    }

    fn state(&self) -> EnclosureState {
        EnclosureState {
            air_temp_c: self.air_temp_c,
            air_rh_pct: self.rh_pct,
        }
    }

    fn name(&self) -> &'static str {
        "tent"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frostlab_simkern::time::SimTime;

    fn wx(temp_c: f64, rh: f64, wind: f64, solar: f64) -> WeatherSample {
        WeatherSample {
            t: SimTime::ZERO,
            temp_c,
            rh_pct: rh,
            wind_ms: wind,
            solar_w_m2: solar,
            cloud: 0.5,
        }
    }

    fn settle(tent: &mut Tent, out: &WeatherSample, power: f64) -> f64 {
        for _ in 0..2_000 {
            tent.step(60.0, out, power);
        }
        tent.state().air_temp_c
    }

    #[test]
    fn closed_tent_retains_heat() {
        // 9 machines ≈ 1 kW, everything closed, moderate wind: the tent
        // should run far above ambient (the authors' "surprisingly good at
        // retaining heat").
        let out = wx(-10.0, 88.0, 4.0, 0.0);
        let mut tent = Tent::new(TentParams::default(), TentConfig::initial(), &out);
        let t = settle(&mut tent, &out, 1000.0);
        let dt = t - out.temp_c;
        assert!((12.0..30.0).contains(&dt), "closed-tent excess {dt} K");
    }

    #[test]
    fn fully_modified_tent_runs_cool() {
        let out = wx(-10.0, 88.0, 4.0, 0.0);
        let mut tent = Tent::new(TentParams::default(), TentConfig::fully_modified(), &out);
        let t = settle(&mut tent, &out, 1000.0);
        let dt = t - out.temp_c;
        assert!((1.0..8.0).contains(&dt), "modified-tent excess {dt} K");
    }

    #[test]
    fn each_modification_lowers_temperature() {
        let out = wx(-8.0, 85.0, 3.5, 150.0);
        let configs = [
            TentConfig::initial(),
            TentConfig {
                foil: true,
                ..TentConfig::initial()
            },
            TentConfig {
                foil: true,
                inner_removed: true,
                ..TentConfig::initial()
            },
            TentConfig {
                foil: true,
                inner_removed: true,
                tarpaulin_removed: true,
                ..TentConfig::initial()
            },
            TentConfig {
                foil: true,
                inner_removed: true,
                tarpaulin_removed: true,
                door_half_open: true,
                fan: false,
            },
            TentConfig::fully_modified(),
        ];
        let mut prev = f64::INFINITY;
        for (i, cfg) in configs.iter().enumerate() {
            let mut tent = Tent::new(TentParams::default(), *cfg, &out);
            let t = settle(&mut tent, &out, 1000.0);
            assert!(
                t < prev,
                "config {i} did not lower temperature: {t} vs {prev}"
            );
            prev = t;
        }
    }

    #[test]
    fn foil_cuts_solar_gain() {
        let out = wx(-5.0, 80.0, 3.0, 300.0);
        let mut bare = Tent::new(TentParams::default(), TentConfig::initial(), &out);
        let mut foiled = Tent::new(
            TentParams::default(),
            TentConfig {
                foil: true,
                ..TentConfig::initial()
            },
            &out,
        );
        let t_bare = settle(&mut bare, &out, 1000.0);
        let t_foil = settle(&mut foiled, &out, 1000.0);
        assert!(
            t_bare - t_foil > 2.0,
            "foil should measurably decrease internal temperature ({t_bare} vs {t_foil})"
        );
    }

    #[test]
    fn wind_increases_cooling_when_open() {
        let calm = wx(-8.0, 85.0, 0.5, 0.0);
        let windy = wx(-8.0, 85.0, 8.0, 0.0);
        let mk = || {
            Tent::new(
                TentParams::default(),
                TentConfig {
                    tarpaulin_removed: true,
                    door_half_open: true,
                    ..Default::default()
                },
                &calm,
            )
        };
        let t_calm = settle(&mut mk(), &calm, 1000.0);
        let t_windy = settle(&mut mk(), &windy, 1000.0);
        assert!(t_calm - t_windy > 3.0, "calm {t_calm} windy {t_windy}");
    }

    #[test]
    fn inside_rh_lower_and_tracks_heating() {
        let out = wx(-10.0, 90.0, 4.0, 0.0);
        let mut tent = Tent::new(TentParams::default(), TentConfig::initial(), &out);
        settle(&mut tent, &out, 1000.0);
        let s = tent.state();
        // Much warmer inside ⇒ much lower RH inside.
        assert!(s.air_rh_pct < 50.0, "inside RH {}", s.air_rh_pct);
        assert!(s.air_rh_pct > 5.0);
    }

    #[test]
    fn rh_smoother_than_outside() {
        // Feed an oscillating outside RH; the closed tent's inside RH should
        // have smaller swing amplitude relative to its own mean trend.
        let mut tent = Tent::new(
            TentParams::default(),
            TentConfig::initial(),
            &wx(-5.0, 85.0, 3.0, 0.0),
        );
        // Spin up.
        for _ in 0..500 {
            tent.step(60.0, &wx(-5.0, 85.0, 3.0, 0.0), 800.0);
        }
        let mut inside = Vec::new();
        let mut outside = Vec::new();
        for i in 0..600 {
            let phase = (i as f64 / 30.0) * std::f64::consts::TAU;
            let rh_out = 85.0 + 10.0 * phase.sin();
            tent.step(60.0, &wx(-5.0, rh_out, 3.0, 0.0), 800.0);
            inside.push(tent.state().air_rh_pct);
            outside.push(rh_out);
        }
        let swing = |xs: &[f64]| {
            let max = xs.iter().cloned().fold(f64::MIN, f64::max);
            let min = xs.iter().cloned().fold(f64::MAX, f64::min);
            max - min
        };
        assert!(
            swing(&inside) < 0.7 * swing(&outside),
            "inside swing {} vs outside {}",
            swing(&inside),
            swing(&outside)
        );
    }

    #[test]
    fn no_power_no_sun_tracks_ambient() {
        let out = wx(-12.0, 85.0, 3.0, 0.0);
        let mut tent = Tent::new(TentParams::default(), TentConfig::initial(), &out);
        let t = settle(&mut tent, &out, 0.0);
        assert!((t - out.temp_c).abs() < 0.2, "{t}");
    }
}
