//! Trace events: sim-time spans and instants with structured fields.

use frostlab_simkern::time::SimTime;
use serde::Value;

/// A structured key/value field attached to a [`TraceEvent`].
///
/// Not a serde-derived enum (the vendored derive handles unit variants
/// only); exporters convert through [`FieldValue::to_value`].
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (non-finite values export as JSON `null`).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Text.
    Str(String),
}

impl FieldValue {
    /// The JSON value this field exports as.
    pub fn to_value(&self) -> Value {
        match self {
            FieldValue::U64(v) => Value::UInt(*v),
            FieldValue::I64(v) => Value::Int(*v),
            FieldValue::F64(v) => Value::Float(*v),
            FieldValue::Bool(v) => Value::Bool(*v),
            FieldValue::Str(v) => Value::Str(v.clone()),
        }
    }
}

/// One recorded observation: a sim-time span (`end` set) or an instant
/// (`end == None`), on a named track.
///
/// Tracks group related events into one timeline row in the Perfetto
/// export — `phase/collection`, `host/15`, `watchdog`, `collector` — and
/// `seq` preserves emission order for ties in sim-time.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Emission sequence number (0-based, unique within one trace).
    pub seq: u64,
    /// Timeline row this event belongs to.
    pub track: String,
    /// Event name (`step`, `job-run`, `attempt`, `incident-open`, …).
    pub name: String,
    /// Span start, or the instant itself.
    pub start: SimTime,
    /// Span end; `None` marks an instant event.
    pub end: Option<SimTime>,
    /// Structured fields, in emission order.
    pub fields: Vec<(String, FieldValue)>,
}

impl TraceEvent {
    /// Span length in seconds (zero for instants).
    pub fn duration_secs(&self) -> i64 {
        match self.end {
            Some(end) => (end - self.start).as_secs(),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frostlab_simkern::time::SimDuration;

    #[test]
    fn field_values_convert_to_json_values() {
        assert_eq!(FieldValue::U64(7).to_value(), Value::UInt(7));
        assert_eq!(FieldValue::I64(-3).to_value(), Value::Int(-3));
        assert_eq!(FieldValue::F64(1.5).to_value(), Value::Float(1.5));
        assert_eq!(FieldValue::Bool(true).to_value(), Value::Bool(true));
        assert_eq!(
            FieldValue::Str("ok".into()).to_value(),
            Value::Str("ok".into())
        );
    }

    #[test]
    fn duration_is_zero_for_instants() {
        let at = SimTime::from_secs(100);
        let instant = TraceEvent {
            seq: 0,
            track: "watchdog".into(),
            name: "incident-open".into(),
            start: at,
            end: None,
            fields: Vec::new(),
        };
        assert_eq!(instant.duration_secs(), 0);
        let span = TraceEvent {
            end: Some(at + SimDuration::secs(60)),
            ..instant
        };
        assert_eq!(span.duration_secs(), 60);
    }
}
