//! Exporters: JSONL event log, Chrome trace-event (Perfetto) JSON, and
//! Prometheus text metrics.
//!
//! All three are pure functions of a frozen trace/snapshot and are part
//! of the byte-identical determinism contract: same campaign, same bytes,
//! regardless of run count or ensemble thread count. Nothing here reads
//! the wall clock.

use serde::Value;

use crate::event::TraceEvent;
use crate::metrics::MetricsSnapshot;
use crate::tracer::CampaignTrace;

/// JSONL schema tag written in the header line.
pub const JSONL_SCHEMA: &str = "frostlab-trace/v1";

fn fields_object(event: &TraceEvent) -> Value {
    Value::Object(
        event
            .fields
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect(),
    )
}

/// Export the event stream as JSON Lines: one header object, then one
/// compact object per event in emission order.
///
/// Event keys, in fixed order: `seq`, `track`, `name`, `at` (civil
/// datetime of the start), `start_s`/`end_s`/`dur_s` (sim-seconds since
/// the epoch; `end_s`/`dur_s` only for spans), and `fields` (omitted when
/// empty).
pub fn to_jsonl(trace: &CampaignTrace) -> Result<String, serde_json::Error> {
    let mut out = String::new();
    let header = Value::Object(vec![
        ("schema".to_string(), Value::Str(JSONL_SCHEMA.to_string())),
        ("base_s".to_string(), Value::Int(trace.base.as_secs())),
        ("events".to_string(), Value::UInt(trace.events.len() as u64)),
        ("dropped".to_string(), Value::UInt(trace.dropped_events)),
    ]);
    out.push_str(&serde_json::to_string(&header)?);
    out.push('\n');
    for event in &trace.events {
        let mut obj = vec![
            ("seq".to_string(), Value::UInt(event.seq)),
            ("track".to_string(), Value::Str(event.track.clone())),
            ("name".to_string(), Value::Str(event.name.clone())),
            ("at".to_string(), Value::Str(event.start.to_string())),
            ("start_s".to_string(), Value::Int(event.start.as_secs())),
        ];
        if let Some(end) = event.end {
            obj.push(("end_s".to_string(), Value::Int(end.as_secs())));
            obj.push(("dur_s".to_string(), Value::Int(event.duration_secs())));
        }
        if !event.fields.is_empty() {
            obj.push(("fields".to_string(), fields_object(event)));
        }
        out.push_str(&serde_json::to_string(&Value::Object(obj))?);
        out.push('\n');
    }
    Ok(out)
}

/// Export as Chrome trace-event JSON, loadable in Perfetto or
/// `chrome://tracing`.
///
/// Every track becomes a named thread under pid 0 (tids assigned by
/// first-appearance order, announced with `thread_name` metadata
/// records). Spans are `ph:"X"` complete events and instants `ph:"i"`;
/// `ts`/`dur` are **microseconds of sim-time** relative to the campaign
/// start, so one on-screen millisecond is one simulated millisecond.
pub fn to_chrome_trace(trace: &CampaignTrace) -> Result<String, serde_json::Error> {
    let mut tids: Vec<&str> = Vec::new();
    let mut records: Vec<Value> = Vec::new();
    for event in &trace.events {
        let tid = match tids.iter().position(|t| *t == event.track) {
            Some(i) => i,
            None => {
                tids.push(&event.track);
                let i = tids.len() - 1;
                records.push(Value::Object(vec![
                    ("ph".to_string(), Value::Str("M".to_string())),
                    ("pid".to_string(), Value::UInt(0)),
                    ("tid".to_string(), Value::UInt(i as u64)),
                    ("name".to_string(), Value::Str("thread_name".to_string())),
                    (
                        "args".to_string(),
                        Value::Object(vec![("name".to_string(), Value::Str(event.track.clone()))]),
                    ),
                ]));
                i
            }
        };
        let ts_us = (event.start - trace.base).as_secs() * 1_000_000;
        let mut obj = vec![
            ("name".to_string(), Value::Str(event.name.clone())),
            ("cat".to_string(), Value::Str("sim".to_string())),
            (
                "ph".to_string(),
                Value::Str(if event.end.is_some() { "X" } else { "i" }.to_string()),
            ),
            ("pid".to_string(), Value::UInt(0)),
            ("tid".to_string(), Value::UInt(tid as u64)),
            ("ts".to_string(), Value::Int(ts_us)),
        ];
        if event.end.is_some() {
            obj.push((
                "dur".to_string(),
                Value::Int(event.duration_secs() * 1_000_000),
            ));
        } else {
            obj.push(("s".to_string(), Value::Str("t".to_string())));
        }
        obj.push(("args".to_string(), fields_object(event)));
        records.push(Value::Object(obj));
    }
    let doc = Value::Object(vec![
        ("traceEvents".to_string(), Value::Array(records)),
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
    ]);
    serde_json::to_string(&doc)
}

fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 9);
    out.push_str("frostlab_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

/// Sanitize a label key into a valid Prometheus label name (no prefix).
fn sanitize_label_key(key: &str) -> String {
    let mut out = String::with_capacity(key.len());
    for (i, c) in key.chars().enumerate() {
        if c.is_ascii_alphabetic() || c == '_' || (i > 0 && c.is_ascii_digit()) {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escape a label value per the text exposition format: backslash,
/// double-quote and newline must be escaped inside the quotes.
fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape `# HELP` text: backslash and newline (quotes are legal there).
fn escape_help(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render a label set as `{k="v",…}` (empty string for flat metrics),
/// optionally with a trailing extra label (the histogram `le`).
fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize_label_key(k), escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Emit the `# HELP` / `# TYPE` header once per family (samples arrive
/// sorted by name, so every series of a family is contiguous).
fn family_header(out: &mut String, last: &mut String, name: &str, raw: &str, kind: &str) {
    if last == name {
        return;
    }
    out.push_str(&format!(
        "# HELP {name} frostlab sim metric `{}`\n# TYPE {name} {kind}\n",
        escape_help(raw)
    ));
    *last = name.to_string();
}

fn fmt_float(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        (if v > 0.0 { "+Inf" } else { "-Inf" }).to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// Export a metrics snapshot in the Prometheus text exposition format.
///
/// Names are prefixed `frostlab_` with non-alphanumerics mapped to `_`
/// (`collector.gaps_open` → `frostlab_collector_gaps_open`). Every
/// family gets one `# HELP` and one `# TYPE` line; labeled series render
/// `{key="value",…}` with backslash/quote/newline escaping. Histograms
/// emit cumulative `_bucket{le="…"}` lines (underflow counts toward every
/// bucket, `+Inf` equals the observation count), then `_sum` and
/// `_count`.
pub fn to_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last = String::new();
    for c in &snapshot.counters {
        let name = sanitize(&c.name);
        family_header(&mut out, &mut last, &name, &c.name, "counter");
        out.push_str(&format!(
            "{name}{} {}\n",
            render_labels(&c.labels, None),
            c.value
        ));
    }
    last.clear();
    for g in &snapshot.gauges {
        let name = sanitize(&g.name);
        family_header(&mut out, &mut last, &name, &g.name, "gauge");
        out.push_str(&format!(
            "{name}{} {}\n",
            render_labels(&g.labels, None),
            fmt_float(g.value)
        ));
    }
    last.clear();
    for h in &snapshot.histograms {
        let name = sanitize(&h.name);
        family_header(&mut out, &mut last, &name, &h.name, "histogram");
        let mut cum = h.underflow;
        for (i, bin) in h.counts.iter().enumerate() {
            cum += bin;
            let le = fmt_float(h.min + h.width * (i + 1) as f64);
            out.push_str(&format!(
                "{name}_bucket{} {cum}\n",
                render_labels(&h.labels, Some(("le", &le)))
            ));
        }
        cum += h.overflow;
        out.push_str(&format!(
            "{name}_bucket{} {cum}\n",
            render_labels(&h.labels, Some(("le", "+Inf")))
        ));
        out.push_str(&format!(
            "{name}_sum{} {}\n",
            render_labels(&h.labels, None),
            fmt_float(h.sum)
        ));
        out.push_str(&format!(
            "{name}_count{} {}\n",
            render_labels(&h.labels, None),
            h.count
        ));
    }
    out
}

/// Promtool-grade structural validation of a text exposition page, used
/// by the conformance unit tests (and available to bins that want to
/// self-check before writing a scrape file). Checks:
///
/// * every sample line's metric has a preceding `# TYPE` (and `# HELP`)
///   for its family;
/// * metric and label names match `[a-zA-Z_:][a-zA-Z0-9_:]*`;
/// * label values are properly quoted and escaped;
/// * histogram families end with a `+Inf` bucket whose count equals
///   `_count`.
///
/// Returns the list of violations (empty = valid).
pub fn validate_prometheus(text: &str) -> Vec<String> {
    let mut errors = Vec::new();
    let mut helped: Vec<String> = Vec::new();
    let mut typed: Vec<(String, String)> = Vec::new();
    let name_ok = |s: &str| {
        !s.is_empty()
            && s.chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && s.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    };
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            match rest.split_once(' ') {
                Some((name, _)) if name_ok(name) => helped.push(name.to_string()),
                _ => errors.push(format!("line {n}: malformed HELP line")),
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            match rest.split_once(' ') {
                Some((name, kind))
                    if name_ok(name)
                        && matches!(
                            kind,
                            "counter" | "gauge" | "histogram" | "summary" | "untyped"
                        ) =>
                {
                    typed.push((name.to_string(), kind.to_string()));
                }
                _ => errors.push(format!("line {n}: malformed TYPE line")),
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // plain comment
        }
        // Sample line: name[{labels}] value
        let (series, value) = match line.rsplit_once(' ') {
            Some(pair) => pair,
            None => {
                errors.push(format!("line {n}: no value"));
                continue;
            }
        };
        if !(value == "+Inf" || value == "-Inf" || value == "NaN" || value.parse::<f64>().is_ok()) {
            errors.push(format!("line {n}: unparsable value {value:?}"));
        }
        let (name, labels) = match series.split_once('{') {
            Some((name, rest)) => match rest.strip_suffix('}') {
                Some(body) => (name, Some(body)),
                None => {
                    errors.push(format!("line {n}: unterminated label set"));
                    continue;
                }
            },
            None => (series, None),
        };
        if !name_ok(name) {
            errors.push(format!("line {n}: bad metric name {name:?}"));
            continue;
        }
        if let Some(body) = labels {
            for pair in split_label_pairs(body) {
                match pair.split_once('=') {
                    Some((k, v)) if name_ok(k) && well_quoted(v) => {}
                    _ => errors.push(format!("line {n}: bad label pair {pair:?}")),
                }
            }
        }
        // A family is the name with histogram/summary suffixes stripped.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|s| name.strip_suffix(s))
            .filter(|f| typed.iter().any(|(t, k)| t == *f && k == "histogram"))
            .unwrap_or(name);
        if !typed.iter().any(|(t, _)| t == family) {
            errors.push(format!(
                "line {n}: sample {name:?} has no TYPE for {family:?}"
            ));
        }
        if !helped.iter().any(|h| h == family) {
            errors.push(format!(
                "line {n}: sample {name:?} has no HELP for {family:?}"
            ));
        }
    }
    // Every histogram family must expose a +Inf bucket.
    for (name, kind) in &typed {
        if kind == "histogram" && !text.contains(&format!("{name}_bucket")) {
            errors.push(format!("histogram {name} has no buckets"));
        } else if kind == "histogram" && !text.contains("le=\"+Inf\"") {
            errors.push(format!("histogram {name} has no +Inf bucket"));
        }
    }
    errors
}

/// Split a label body on commas that sit *outside* quoted values.
fn split_label_pairs(body: &str) -> Vec<&str> {
    let mut pairs = Vec::new();
    let (mut start, mut in_quotes, mut escaped) = (0usize, false, false);
    for (i, c) in body.char_indices() {
        match c {
            '\\' if in_quotes => escaped = !escaped,
            '"' if !escaped => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                pairs.push(&body[start..i]);
                start = i + 1;
                escaped = false;
            }
            _ => escaped = false,
        }
    }
    if start < body.len() {
        pairs.push(&body[start..]);
    }
    pairs
}

/// Is this a `"…"` label value with every inner quote escaped?
fn well_quoted(v: &str) -> bool {
    let Some(body) = v.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
        return false;
    };
    let mut escaped = false;
    for c in body.chars() {
        match c {
            '\\' if !escaped => escaped = true,
            '"' if !escaped => return false, // bare quote inside
            _ => escaped = false,
        }
    }
    !escaped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FieldValue;
    use crate::metrics::MetricsRegistry;
    use crate::tracer::{TraceConfig, Tracer};
    use frostlab_simkern::time::{SimDuration, SimTime};

    fn sample_trace() -> CampaignTrace {
        let base = SimTime::ZERO;
        let mut t = Tracer::enabled(TraceConfig::default(), base);
        t.span(
            "phase/weather",
            "step",
            base,
            base + SimDuration::secs(60),
            &[("tick", FieldValue::U64(0))],
        );
        t.instant(
            "watchdog",
            "incident-open",
            base + SimDuration::secs(30),
            &[("kind", FieldValue::Str("switch".into()))],
        );
        t.span(
            "phase/weather",
            "step",
            base + SimDuration::secs(60),
            base + SimDuration::secs(120),
            &[],
        );
        t.finish().expect("enabled")
    }

    #[test]
    fn jsonl_has_header_and_one_line_per_event() {
        let jsonl = to_jsonl(&sample_trace()).expect("plain data");
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"schema\":\"frostlab-trace/v1\""));
        assert!(lines[0].contains("\"events\":3"));
        assert!(lines[1].contains("\"track\":\"phase/weather\""));
        assert!(lines[1].contains("\"at\":\"2010-01-01 00:00:00\""));
        assert!(lines[1].contains("\"dur_s\":60"));
        // Instant events carry no end/duration and keep their fields.
        assert!(lines[2].contains("\"name\":\"incident-open\""));
        assert!(!lines[2].contains("dur_s"));
        assert!(lines[2].contains("\"kind\":\"switch\""));
        // Spans without fields omit the fields object entirely.
        assert!(!lines[3].contains("fields"));
    }

    #[test]
    fn chrome_trace_names_tracks_and_scales_to_microseconds() {
        let json = to_chrome_trace(&sample_trace()).expect("plain data");
        assert!(json.contains("\"displayTimeUnit\":\"ms\""));
        // Two tracks, first-appearance order: phase/weather = 0, watchdog = 1.
        assert!(json.contains("\"thread_name\",\"args\":{\"name\":\"phase/weather\"}"));
        assert!(json.contains("\"thread_name\",\"args\":{\"name\":\"watchdog\"}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":0,\"dur\":60000000"));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ts\":30000000,\"s\":\"t\""));
    }

    #[test]
    fn exports_are_deterministic() {
        let a = sample_trace();
        let b = sample_trace();
        assert_eq!(to_jsonl(&a).unwrap(), to_jsonl(&b).unwrap());
        assert_eq!(to_chrome_trace(&a).unwrap(), to_chrome_trace(&b).unwrap());
    }

    #[test]
    fn prometheus_text_renders_all_metric_kinds() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("collector.attempts_total", 7);
        reg.gauge_set("tent.temp_c", -12.5);
        reg.register_histogram("tent.temp_c_dist", -2.0, 1.0, 3);
        reg.observe("tent.temp_c_dist", -5.0); // underflow
        reg.observe("tent.temp_c_dist", -1.5); // bin 0
        reg.observe("tent.temp_c_dist", 0.5); // bin 2
        reg.observe("tent.temp_c_dist", 9.0); // overflow
        let text = to_prometheus(&reg.snapshot());
        assert!(text.contains(
            "# TYPE frostlab_collector_attempts_total counter\nfrostlab_collector_attempts_total 7\n"
        ));
        assert!(text.contains("# TYPE frostlab_tent_temp_c gauge\nfrostlab_tent_temp_c -12.5\n"));
        // Cumulative buckets: underflow=1, then +1 at le=-1, +0, +1, +Inf adds overflow.
        assert!(text.contains("frostlab_tent_temp_c_dist_bucket{le=\"-1.0\"} 2\n"));
        assert!(text.contains("frostlab_tent_temp_c_dist_bucket{le=\"0.0\"} 2\n"));
        assert!(text.contains("frostlab_tent_temp_c_dist_bucket{le=\"1.0\"} 3\n"));
        assert!(text.contains("frostlab_tent_temp_c_dist_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("frostlab_tent_temp_c_dist_sum 3.0\n"));
        assert!(text.contains("frostlab_tent_temp_c_dist_count 4\n"));
    }

    #[test]
    fn prometheus_emits_help_and_type_once_per_family() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add_labeled("host.resets_total", &[("zone", "z1")], 2);
        reg.counter_add_labeled("host.resets_total", &[("zone", "z2")], 5);
        reg.gauge_set("tent.temp_c", -4.0);
        let text = to_prometheus(&reg.snapshot());
        assert_eq!(
            text.matches("# HELP frostlab_host_resets_total ").count(),
            1
        );
        assert_eq!(
            text.matches("# TYPE frostlab_host_resets_total counter")
                .count(),
            1
        );
        assert!(text.contains("# HELP frostlab_tent_temp_c frostlab sim metric `tent.temp_c`\n"));
        assert!(text.contains("frostlab_host_resets_total{zone=\"z1\"} 2\n"));
        assert!(text.contains("frostlab_host_resets_total{zone=\"z2\"} 5\n"));
        assert!(
            validate_prometheus(&text).is_empty(),
            "{:?}",
            validate_prometheus(&text)
        );
    }

    #[test]
    fn prometheus_escapes_label_values() {
        let mut reg = MetricsRegistry::new();
        reg.gauge_set_labeled(
            "weird",
            &[("path", "a\\b"), ("quote", "say \"hi\""), ("nl", "x\ny")],
            1.0,
        );
        let text = to_prometheus(&reg.snapshot());
        assert!(text.contains("path=\"a\\\\b\""));
        assert!(text.contains("quote=\"say \\\"hi\\\"\""));
        assert!(text.contains("nl=\"x\\ny\""));
        assert!(
            validate_prometheus(&text).is_empty(),
            "{:?}",
            validate_prometheus(&text)
        );
    }

    #[test]
    fn prometheus_labeled_histogram_keeps_labels_on_every_bucket() {
        let mut reg = MetricsRegistry::new();
        reg.register_histogram_labeled("tent.temp_c_dist", &[("zone", "z1")], 0.0, 1.0, 2);
        reg.observe_labeled("tent.temp_c_dist", &[("zone", "z1")], 0.5);
        let text = to_prometheus(&reg.snapshot());
        assert!(text.contains("frostlab_tent_temp_c_dist_bucket{zone=\"z1\",le=\"1.0\"} 1\n"));
        assert!(text.contains("frostlab_tent_temp_c_dist_bucket{zone=\"z1\",le=\"+Inf\"} 1\n"));
        assert!(text.contains("frostlab_tent_temp_c_dist_sum{zone=\"z1\"} 0.5\n"));
        assert!(text.contains("frostlab_tent_temp_c_dist_count{zone=\"z1\"} 1\n"));
        assert!(
            validate_prometheus(&text).is_empty(),
            "{:?}",
            validate_prometheus(&text)
        );
    }

    #[test]
    fn prometheus_validator_catches_structural_violations() {
        // No TYPE/HELP for the sample's family.
        let errs = validate_prometheus("orphan_metric 1\n");
        assert_eq!(errs.len(), 2);
        // Unescaped quote inside a label value.
        let bad = "# HELP m h\n# TYPE m gauge\nm{k=\"a\"b\"} 1\n";
        assert!(!validate_prometheus(bad).is_empty());
        // Histogram family with no +Inf bucket.
        let bad = "# HELP h h\n# TYPE h histogram\nh_bucket{le=\"1.0\"} 1\nh_sum 0.5\nh_count 1\n";
        assert!(validate_prometheus(bad).iter().any(|e| e.contains("+Inf")));
        // A full real export passes.
        let text = to_prometheus(&sample_metrics_snapshot());
        assert!(
            validate_prometheus(&text).is_empty(),
            "{:?}",
            validate_prometheus(&text)
        );
    }

    fn sample_metrics_snapshot() -> MetricsSnapshot {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("collector.attempts_total", 7);
        reg.counter_add_labeled("host.resets_total", &[("zone", "z1"), ("vendor", "A")], 1);
        reg.gauge_set("tent.temp_c", -12.5);
        reg.gauge_set_labeled("zone.temp_c", &[("zone", "z2")], -7.25);
        reg.register_histogram("tent.temp_c_dist", -2.0, 1.0, 3);
        reg.observe("tent.temp_c_dist", 0.5);
        reg.snapshot()
    }

    #[test]
    fn empty_trace_exports_cleanly() {
        let t = Tracer::enabled(TraceConfig::default(), SimTime::ZERO);
        let trace = t.finish().expect("enabled");
        let jsonl = to_jsonl(&trace).expect("plain data");
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("\"events\":0"));
        assert!(lines[0].contains("\"dropped\":0"));
        let chrome = to_chrome_trace(&trace).expect("plain data");
        assert!(chrome.contains("\"traceEvents\":[]"));
        assert_eq!(to_prometheus(&trace.metrics), "");
    }

    #[test]
    fn metrics_only_trace_has_empty_stream_but_full_scrape() {
        let mut t = Tracer::enabled(TraceConfig::metrics_only(), SimTime::ZERO);
        t.counter_add("collector.attempts_total", 3);
        t.gauge_set("tent.temp_c", -8.0);
        let trace = t.finish().expect("enabled");
        assert!(trace.events.is_empty());
        let jsonl = to_jsonl(&trace).expect("plain data");
        assert_eq!(jsonl.lines().count(), 1);
        let text = to_prometheus(&trace.metrics);
        assert!(text.contains("frostlab_collector_attempts_total 3\n"));
        assert!(text.contains("frostlab_tent_temp_c -8.0\n"));
        assert!(validate_prometheus(&text).is_empty());
    }

    #[test]
    fn span_open_at_campaign_end_exports_without_end_or_duration() {
        // A gap that never healed leaves its span open (`end: None`);
        // exporters must render it as an instant, not invent an end.
        let base = SimTime::ZERO;
        let trace = CampaignTrace {
            base,
            events: vec![TraceEvent {
                seq: 0,
                track: "host/3".to_string(),
                name: "collection-gap".to_string(),
                start: base + SimDuration::secs(120),
                end: None,
                fields: vec![("open".to_string(), FieldValue::Bool(true))],
            }],
            dropped_events: 0,
            metrics: MetricsRegistry::new().snapshot(),
        };
        let jsonl = to_jsonl(&trace).expect("plain data");
        let line = jsonl.lines().nth(1).expect("one event line");
        assert!(line.contains("\"start_s\":120"));
        assert!(!line.contains("end_s") && !line.contains("dur_s"));
        let chrome = to_chrome_trace(&trace).expect("plain data");
        assert!(chrome.contains("\"ph\":\"i\""));
        assert!(!chrome.contains("\"ph\":\"X\""));
    }

    #[test]
    fn perfetto_tids_assign_by_first_appearance_and_are_stable() {
        let make = || {
            let base = SimTime::ZERO;
            let mut t = Tracer::enabled(TraceConfig::default(), base);
            t.instant("watchdog", "a", base, &[]);
            t.span(
                "phase/weather",
                "step",
                base,
                base + SimDuration::secs(60),
                &[],
            );
            t.instant("watchdog", "b", base + SimDuration::secs(30), &[]);
            t.instant("host/0", "c", base + SimDuration::secs(40), &[]);
            t.finish().expect("enabled")
        };
        let a = to_chrome_trace(&make()).expect("plain data");
        let b = to_chrome_trace(&make()).expect("plain data");
        assert_eq!(a, b);
        // First appearance: watchdog=0, phase/weather=1, host/0=2 — and
        // the repeated watchdog event reuses tid 0 with no second
        // thread_name record.
        let tid_of = |track: &str| -> u64 {
            let needle = format!("\"args\":{{\"name\":\"{track}\"}}");
            let meta_end = a.find(&needle).expect("thread_name record");
            let head = &a[..meta_end];
            let tid_pos = head.rfind("\"tid\":").expect("tid key") + "\"tid\":".len();
            a[tid_pos..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>()
                .parse()
                .expect("tid digits")
        };
        assert_eq!(tid_of("watchdog"), 0);
        assert_eq!(tid_of("phase/weather"), 1);
        assert_eq!(tid_of("host/0"), 2);
        assert_eq!(a.matches("\"name\":\"thread_name\"").count(), 3);
    }
}
