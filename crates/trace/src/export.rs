//! Exporters: JSONL event log, Chrome trace-event (Perfetto) JSON, and
//! Prometheus text metrics.
//!
//! All three are pure functions of a frozen trace/snapshot and are part
//! of the byte-identical determinism contract: same campaign, same bytes,
//! regardless of run count or ensemble thread count. Nothing here reads
//! the wall clock.

use serde::Value;

use crate::event::TraceEvent;
use crate::metrics::MetricsSnapshot;
use crate::tracer::CampaignTrace;

/// JSONL schema tag written in the header line.
pub const JSONL_SCHEMA: &str = "frostlab-trace/v1";

fn fields_object(event: &TraceEvent) -> Value {
    Value::Object(
        event
            .fields
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect(),
    )
}

/// Export the event stream as JSON Lines: one header object, then one
/// compact object per event in emission order.
///
/// Event keys, in fixed order: `seq`, `track`, `name`, `at` (civil
/// datetime of the start), `start_s`/`end_s`/`dur_s` (sim-seconds since
/// the epoch; `end_s`/`dur_s` only for spans), and `fields` (omitted when
/// empty).
pub fn to_jsonl(trace: &CampaignTrace) -> Result<String, serde_json::Error> {
    let mut out = String::new();
    let header = Value::Object(vec![
        ("schema".to_string(), Value::Str(JSONL_SCHEMA.to_string())),
        ("base_s".to_string(), Value::Int(trace.base.as_secs())),
        ("events".to_string(), Value::UInt(trace.events.len() as u64)),
        ("dropped".to_string(), Value::UInt(trace.dropped_events)),
    ]);
    out.push_str(&serde_json::to_string(&header)?);
    out.push('\n');
    for event in &trace.events {
        let mut obj = vec![
            ("seq".to_string(), Value::UInt(event.seq)),
            ("track".to_string(), Value::Str(event.track.clone())),
            ("name".to_string(), Value::Str(event.name.clone())),
            ("at".to_string(), Value::Str(event.start.to_string())),
            ("start_s".to_string(), Value::Int(event.start.as_secs())),
        ];
        if let Some(end) = event.end {
            obj.push(("end_s".to_string(), Value::Int(end.as_secs())));
            obj.push(("dur_s".to_string(), Value::Int(event.duration_secs())));
        }
        if !event.fields.is_empty() {
            obj.push(("fields".to_string(), fields_object(event)));
        }
        out.push_str(&serde_json::to_string(&Value::Object(obj))?);
        out.push('\n');
    }
    Ok(out)
}

/// Export as Chrome trace-event JSON, loadable in Perfetto or
/// `chrome://tracing`.
///
/// Every track becomes a named thread under pid 0 (tids assigned by
/// first-appearance order, announced with `thread_name` metadata
/// records). Spans are `ph:"X"` complete events and instants `ph:"i"`;
/// `ts`/`dur` are **microseconds of sim-time** relative to the campaign
/// start, so one on-screen millisecond is one simulated millisecond.
pub fn to_chrome_trace(trace: &CampaignTrace) -> Result<String, serde_json::Error> {
    let mut tids: Vec<&str> = Vec::new();
    let mut records: Vec<Value> = Vec::new();
    for event in &trace.events {
        let tid = match tids.iter().position(|t| *t == event.track) {
            Some(i) => i,
            None => {
                tids.push(&event.track);
                let i = tids.len() - 1;
                records.push(Value::Object(vec![
                    ("ph".to_string(), Value::Str("M".to_string())),
                    ("pid".to_string(), Value::UInt(0)),
                    ("tid".to_string(), Value::UInt(i as u64)),
                    ("name".to_string(), Value::Str("thread_name".to_string())),
                    (
                        "args".to_string(),
                        Value::Object(vec![("name".to_string(), Value::Str(event.track.clone()))]),
                    ),
                ]));
                i
            }
        };
        let ts_us = (event.start - trace.base).as_secs() * 1_000_000;
        let mut obj = vec![
            ("name".to_string(), Value::Str(event.name.clone())),
            ("cat".to_string(), Value::Str("sim".to_string())),
            (
                "ph".to_string(),
                Value::Str(if event.end.is_some() { "X" } else { "i" }.to_string()),
            ),
            ("pid".to_string(), Value::UInt(0)),
            ("tid".to_string(), Value::UInt(tid as u64)),
            ("ts".to_string(), Value::Int(ts_us)),
        ];
        if event.end.is_some() {
            obj.push((
                "dur".to_string(),
                Value::Int(event.duration_secs() * 1_000_000),
            ));
        } else {
            obj.push(("s".to_string(), Value::Str("t".to_string())));
        }
        obj.push(("args".to_string(), fields_object(event)));
        records.push(Value::Object(obj));
    }
    let doc = Value::Object(vec![
        ("traceEvents".to_string(), Value::Array(records)),
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
    ]);
    serde_json::to_string(&doc)
}

fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 9);
    out.push_str("frostlab_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

fn fmt_float(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        (if v > 0.0 { "+Inf" } else { "-Inf" }).to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// Export a metrics snapshot in the Prometheus text exposition format.
///
/// Names are prefixed `frostlab_` with non-alphanumerics mapped to `_`
/// (`collector.gaps_open` → `frostlab_collector_gaps_open`). Histograms
/// emit cumulative `_bucket{le="…"}` lines (underflow counts toward every
/// bucket, `+Inf` equals the observation count), then `_sum` and
/// `_count`.
pub fn to_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for c in &snapshot.counters {
        let name = sanitize(&c.name);
        out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.value));
    }
    for g in &snapshot.gauges {
        let name = sanitize(&g.name);
        out.push_str(&format!(
            "# TYPE {name} gauge\n{name} {}\n",
            fmt_float(g.value)
        ));
    }
    for h in &snapshot.histograms {
        let name = sanitize(&h.name);
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let mut cum = h.underflow;
        for (i, bin) in h.counts.iter().enumerate() {
            cum += bin;
            let le = h.min + h.width * (i + 1) as f64;
            out.push_str(&format!(
                "{name}_bucket{{le=\"{}\"}} {cum}\n",
                fmt_float(le)
            ));
        }
        cum += h.overflow;
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cum}\n"));
        out.push_str(&format!("{name}_sum {}\n", fmt_float(h.sum)));
        out.push_str(&format!("{name}_count {}\n", h.count));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FieldValue;
    use crate::metrics::MetricsRegistry;
    use crate::tracer::{TraceConfig, Tracer};
    use frostlab_simkern::time::{SimDuration, SimTime};

    fn sample_trace() -> CampaignTrace {
        let base = SimTime::ZERO;
        let mut t = Tracer::enabled(TraceConfig::default(), base);
        t.span(
            "phase/weather",
            "step",
            base,
            base + SimDuration::secs(60),
            &[("tick", FieldValue::U64(0))],
        );
        t.instant(
            "watchdog",
            "incident-open",
            base + SimDuration::secs(30),
            &[("kind", FieldValue::Str("switch".into()))],
        );
        t.span(
            "phase/weather",
            "step",
            base + SimDuration::secs(60),
            base + SimDuration::secs(120),
            &[],
        );
        t.finish().expect("enabled")
    }

    #[test]
    fn jsonl_has_header_and_one_line_per_event() {
        let jsonl = to_jsonl(&sample_trace()).expect("plain data");
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"schema\":\"frostlab-trace/v1\""));
        assert!(lines[0].contains("\"events\":3"));
        assert!(lines[1].contains("\"track\":\"phase/weather\""));
        assert!(lines[1].contains("\"at\":\"2010-01-01 00:00:00\""));
        assert!(lines[1].contains("\"dur_s\":60"));
        // Instant events carry no end/duration and keep their fields.
        assert!(lines[2].contains("\"name\":\"incident-open\""));
        assert!(!lines[2].contains("dur_s"));
        assert!(lines[2].contains("\"kind\":\"switch\""));
        // Spans without fields omit the fields object entirely.
        assert!(!lines[3].contains("fields"));
    }

    #[test]
    fn chrome_trace_names_tracks_and_scales_to_microseconds() {
        let json = to_chrome_trace(&sample_trace()).expect("plain data");
        assert!(json.contains("\"displayTimeUnit\":\"ms\""));
        // Two tracks, first-appearance order: phase/weather = 0, watchdog = 1.
        assert!(json.contains("\"thread_name\",\"args\":{\"name\":\"phase/weather\"}"));
        assert!(json.contains("\"thread_name\",\"args\":{\"name\":\"watchdog\"}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":0,\"dur\":60000000"));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ts\":30000000,\"s\":\"t\""));
    }

    #[test]
    fn exports_are_deterministic() {
        let a = sample_trace();
        let b = sample_trace();
        assert_eq!(to_jsonl(&a).unwrap(), to_jsonl(&b).unwrap());
        assert_eq!(to_chrome_trace(&a).unwrap(), to_chrome_trace(&b).unwrap());
    }

    #[test]
    fn prometheus_text_renders_all_metric_kinds() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("collector.attempts_total", 7);
        reg.gauge_set("tent.temp_c", -12.5);
        reg.register_histogram("tent.temp_c_dist", -2.0, 1.0, 3);
        reg.observe("tent.temp_c_dist", -5.0); // underflow
        reg.observe("tent.temp_c_dist", -1.5); // bin 0
        reg.observe("tent.temp_c_dist", 0.5); // bin 2
        reg.observe("tent.temp_c_dist", 9.0); // overflow
        let text = to_prometheus(&reg.snapshot());
        assert!(text.contains(
            "# TYPE frostlab_collector_attempts_total counter\nfrostlab_collector_attempts_total 7\n"
        ));
        assert!(text.contains("# TYPE frostlab_tent_temp_c gauge\nfrostlab_tent_temp_c -12.5\n"));
        // Cumulative buckets: underflow=1, then +1 at le=-1, +0, +1, +Inf adds overflow.
        assert!(text.contains("frostlab_tent_temp_c_dist_bucket{le=\"-1.0\"} 2\n"));
        assert!(text.contains("frostlab_tent_temp_c_dist_bucket{le=\"0.0\"} 2\n"));
        assert!(text.contains("frostlab_tent_temp_c_dist_bucket{le=\"1.0\"} 3\n"));
        assert!(text.contains("frostlab_tent_temp_c_dist_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("frostlab_tent_temp_c_dist_sum 3.0\n"));
        assert!(text.contains("frostlab_tent_temp_c_dist_count 4\n"));
    }
}
