//! # frostlab-trace
//!
//! Deterministic, zero-cost-when-disabled observability for campaigns.
//!
//! The paper is a measurement study: its contribution *is* the
//! instrumentation. This crate gives the digital twin the same property —
//! a campaign run can be observed as it happens, not only through its
//! final artifacts. Three pieces:
//!
//! * [`tracer::Tracer`] — a handle carried in the campaign context that
//!   records **sim-time** spans and instant events (phase steps, host
//!   jobs, collection attempts, watchdog incidents) with structured
//!   key/value [`event::FieldValue`] fields. The default handle is a
//!   no-op: every record call early-returns on a `None` buffer, so a
//!   campaign built without [`tracer::TraceConfig`] pays nothing and
//!   stays byte-identical to an untraced build (the golden-hash tests
//!   pin this).
//! * [`metrics::MetricsRegistry`] — counters, gauges and fixed-bin
//!   histograms (reusing [`frostlab_analysis::stats`]) sampled at tick
//!   boundaries: `netsim.retransmits`, `collector.gaps_open`,
//!   `tent.temp_c`, `workload.archives_stored`, …
//! * [`export`] — a JSONL event log, a Chrome trace-event / Perfetto
//!   JSON keyed to sim-time (flame-style phase and host timelines), and
//!   a Prometheus text snapshot of the metrics.
//!
//! ## Determinism contract
//!
//! The tracer draws **no randomness** and stamps **no wall-clock**: every
//! timestamp in an exported trace is simulation time. A traced campaign
//! therefore emits byte-identical output across runs and — because each
//! campaign writes to its own buffer — across ensemble thread counts.
//! Wall-clock timings live only in the separate `phase_breakdown` side
//! channel (`TimingProbe` in `frostlab-core`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod metrics;
pub mod tracer;

pub use event::{FieldValue, TraceEvent};
pub use metrics::{
    CounterSample, GaugeSample, HistogramSample, MetricKey, MetricsRegistry, MetricsSnapshot,
};
pub use tracer::{CampaignTrace, TraceConfig, Tracer};
