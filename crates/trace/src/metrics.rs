//! The metrics registry: counters, gauges, fixed-bin histograms — flat
//! or labeled.
//!
//! Metric names are dotted lowercase paths (`collector.gaps_open`,
//! `tent.temp_c`); the Prometheus exporter sanitizes them. A metric may
//! additionally carry a small, ordered label set (`fleet.cpu_temp_c`
//! with `placement="tent", zone="3"`), forming one *family* of series
//! per name — the dimensional rollup surface `frostlab-obs` writes
//! through. Everything is stored in `BTreeMap`s keyed by
//! `(name, labels)` so a [`MetricsSnapshot`] always lists series in
//! (name, label) order — part of the byte-identical export contract.

use std::collections::BTreeMap;

use frostlab_analysis::stats::Histogram;

/// A metric series key: the family name plus its ordered label pairs.
///
/// Labels are kept exactly as written (no sorting): callers pass them in
/// a fixed order, which then *is* the canonical order for that series.
/// The derived `Ord` sorts first by name, then by label pairs, so every
/// series of one family is contiguous in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Family name (dotted path).
    pub name: String,
    /// Ordered `(key, value)` label pairs; empty for flat metrics.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// A flat (unlabeled) key.
    pub fn flat(name: &str) -> MetricKey {
        MetricKey {
            name: name.to_string(),
            labels: Vec::new(),
        }
    }

    /// A labeled key.
    pub fn labeled(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        MetricKey {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }
}

/// Live metric state while a campaign runs.
///
/// Counters are monotonic `u64`s, gauges are last-write-wins `f64`s, and
/// histograms must be registered (geometry up front) before
/// [`MetricsRegistry::observe`] feeds them — an observation against an
/// unregistered name is silently dropped, so optional instrumentation
/// can't poison a run with an implicit geometry.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, f64>,
    histograms: BTreeMap<MetricKey, HistState>,
}

#[derive(Debug, Clone)]
struct HistState {
    hist: Histogram,
    sum: f64,
    count: u64,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `delta` to a (monotonic) counter, creating it at zero.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(MetricKey::flat(name)).or_insert(0) += delta;
    }

    /// Add `delta` to a labeled counter series.
    pub fn counter_add_labeled(&mut self, name: &str, labels: &[(&str, &str)], delta: u64) {
        *self
            .counters
            .entry(MetricKey::labeled(name, labels))
            .or_insert(0) += delta;
    }

    /// Set a gauge to its latest value, creating it on first write.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(MetricKey::flat(name), value);
    }

    /// Set a labeled gauge series to its latest value.
    pub fn gauge_set_labeled(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.gauges.insert(MetricKey::labeled(name, labels), value);
    }

    /// Register a fixed-bin histogram over `[min, min + width·bins)`.
    /// Re-registering an existing name keeps the original state.
    ///
    /// # Panics
    /// Panics if `width <= 0` or `bins == 0` (bad geometry is a
    /// scenario-definition bug).
    pub fn register_histogram(&mut self, name: &str, min: f64, width: f64, bins: usize) {
        self.register_histogram_keyed(MetricKey::flat(name), min, width, bins);
    }

    /// Register a labeled histogram series (same rules as
    /// [`MetricsRegistry::register_histogram`]).
    pub fn register_histogram_labeled(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        min: f64,
        width: f64,
        bins: usize,
    ) {
        self.register_histogram_keyed(MetricKey::labeled(name, labels), min, width, bins);
    }

    fn register_histogram_keyed(&mut self, key: MetricKey, min: f64, width: f64, bins: usize) {
        self.histograms.entry(key).or_insert_with(|| HistState {
            hist: Histogram::new(min, width, bins),
            sum: 0.0,
            count: 0,
        });
    }

    /// Feed one sample into a registered histogram. Unregistered names
    /// and NaN samples are ignored.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.observe_keyed(&MetricKey::flat(name), value);
    }

    /// Feed one sample into a registered labeled histogram series.
    pub fn observe_labeled(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.observe_keyed(&MetricKey::labeled(name, labels), value);
    }

    fn observe_keyed(&mut self, key: &MetricKey, value: f64) {
        if value.is_nan() {
            return;
        }
        if let Some(state) = self.histograms.get_mut(key) {
            state.hist.push(value);
            state.sum += value;
            state.count += 1;
        }
    }

    /// Current value of a (flat) counter (`None` until first increment).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(&MetricKey::flat(name)).copied()
    }

    /// Current value of a (flat) gauge (`None` until first write).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(&MetricKey::flat(name)).copied()
    }

    /// Freeze the registry into a serializable, key-ordered snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(key, &value)| CounterSample {
                    name: key.name.clone(),
                    labels: key.labels.clone(),
                    value,
                })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(key, &value)| GaugeSample {
                    name: key.name.clone(),
                    labels: key.labels.clone(),
                    value,
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(key, state)| HistogramSample {
                    name: key.name.clone(),
                    labels: key.labels.clone(),
                    min: state.hist.min,
                    width: state.hist.width,
                    counts: state.hist.counts.clone(),
                    underflow: state.hist.underflow,
                    overflow: state.hist.overflow,
                    sum: state.sum,
                    count: state.count,
                })
                .collect(),
        }
    }
}

/// `skip_serializing_if` helper: flat series keep their pre-label JSON.
fn no_labels(labels: &[(String, String)]) -> bool {
    labels.is_empty()
}

/// One counter series' frozen value.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CounterSample {
    /// Metric family name.
    pub name: String,
    /// Ordered label pairs (empty and unserialized for flat metrics, so
    /// pre-label snapshots keep their exact JSON bytes).
    #[serde(default, skip_serializing_if = "no_labels")]
    pub labels: Vec<(String, String)>,
    /// Monotonic count.
    pub value: u64,
}

/// One gauge series' frozen value.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GaugeSample {
    /// Metric family name.
    pub name: String,
    /// Ordered label pairs (empty for flat metrics).
    #[serde(default, skip_serializing_if = "no_labels")]
    pub labels: Vec<(String, String)>,
    /// Last value written.
    pub value: f64,
}

/// One histogram series' frozen state (geometry + counts + sum).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HistogramSample {
    /// Metric family name.
    pub name: String,
    /// Ordered label pairs (empty for flat metrics).
    #[serde(default, skip_serializing_if = "no_labels")]
    pub labels: Vec<(String, String)>,
    /// Left edge of the first bin.
    pub min: f64,
    /// Bin width.
    pub width: f64,
    /// Per-bin counts.
    pub counts: Vec<u64>,
    /// Samples below `min`.
    pub underflow: u64,
    /// Samples at or above the last edge.
    pub overflow: u64,
    /// Sum of all observed samples.
    pub sum: f64,
    /// Number of observed samples.
    pub count: u64,
}

impl HistogramSample {
    /// Rehydrate the [`Histogram`] for merging or percentile queries.
    pub fn to_histogram(&self) -> Histogram {
        Histogram {
            min: self.min,
            width: self.width,
            counts: self.counts.clone(),
            underflow: self.underflow,
            overflow: self.overflow,
        }
    }
}

/// Key-ordered, serializable snapshot of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct MetricsSnapshot {
    /// All counter series, by (name, labels).
    pub counters: Vec<CounterSample>,
    /// All gauge series, by (name, labels).
    pub gauges: Vec<GaugeSample>,
    /// All histogram series, by (name, labels).
    pub histograms: Vec<HistogramSample>,
}

impl MetricsSnapshot {
    /// Look up a flat counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name && c.labels.is_empty())
            .map(|c| c.value)
    }

    /// Look up a flat gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|g| g.name == name && g.labels.is_empty())
            .map(|g| g.value)
    }

    /// Look up a labeled gauge series.
    pub fn gauge_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges
            .iter()
            .find(|g| {
                g.name == name
                    && g.labels.len() == labels.len()
                    && g.labels
                        .iter()
                        .zip(labels)
                        .all(|((k, v), (lk, lv))| k == lk && v == lv)
            })
            .map(|g| g.value)
    }

    /// Pretty JSON of the snapshot.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("collector.attempts_total", 3);
        reg.counter_add("collector.attempts_total", 2);
        reg.gauge_set("tent.temp_c", -12.0);
        reg.gauge_set("tent.temp_c", -9.5);
        assert_eq!(reg.counter("collector.attempts_total"), Some(5));
        assert_eq!(reg.gauge("tent.temp_c"), Some(-9.5));
        assert_eq!(reg.counter("nope"), None);
        assert_eq!(reg.gauge("nope"), None);
    }

    #[test]
    fn labeled_series_are_distinct_from_flat_and_from_each_other() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("runs", 1);
        reg.counter_add_labeled("runs", &[("zone", "0")], 2);
        reg.counter_add_labeled("runs", &[("zone", "1")], 3);
        reg.counter_add_labeled("runs", &[("zone", "0")], 4);
        assert_eq!(reg.counter("runs"), Some(1));
        let snap = reg.snapshot();
        assert_eq!(snap.counters.len(), 3);
        // Flat sorts before labeled; label values order the rest.
        assert!(snap.counters[0].labels.is_empty());
        assert_eq!(snap.counters[1].labels, vec![("zone".into(), "0".into())]);
        assert_eq!(snap.counters[1].value, 6);
        assert_eq!(snap.counters[2].value, 3);
    }

    #[test]
    fn labeled_gauges_and_histograms_round_trip() {
        let mut reg = MetricsRegistry::new();
        reg.gauge_set_labeled(
            "fleet.cpu_temp_c",
            &[("placement", "tent"), ("zone", "2")],
            -3.5,
        );
        reg.register_histogram_labeled("fleet.temp_dist", &[("vendor", "A")], -40.0, 1.0, 80);
        reg.observe_labeled("fleet.temp_dist", &[("vendor", "A")], -5.0);
        reg.observe_labeled("fleet.temp_dist", &[("vendor", "B")], -5.0); // unregistered series
        let snap = reg.snapshot();
        assert_eq!(
            snap.gauge_labeled("fleet.cpu_temp_c", &[("placement", "tent"), ("zone", "2")]),
            Some(-3.5)
        );
        assert_eq!(snap.gauge("fleet.cpu_temp_c"), None, "flat lookup misses");
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].count, 1);
        let json = snap.to_json().expect("plain data");
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("valid");
        assert_eq!(back, snap);
    }

    #[test]
    fn flat_sample_json_has_no_labels_key() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("alpha", 1);
        let json = reg.snapshot().to_json().expect("plain data");
        assert!(
            !json.contains("labels"),
            "flat snapshots keep their pre-label JSON shape"
        );
    }

    #[test]
    fn histograms_require_registration() {
        let mut reg = MetricsRegistry::new();
        reg.observe("tent.temp_c_dist", -5.0); // dropped: not registered
        reg.register_histogram("tent.temp_c_dist", -40.0, 1.0, 80);
        reg.observe("tent.temp_c_dist", -5.0);
        reg.observe("tent.temp_c_dist", -5.5);
        reg.observe("tent.temp_c_dist", f64::NAN); // ignored
        let snap = reg.snapshot();
        let h = &snap.histograms[0];
        assert_eq!(h.count, 2);
        assert!((h.sum + 10.5).abs() < 1e-12);
        assert_eq!(h.counts.iter().sum::<u64>(), 2);
        assert_eq!(h.to_histogram().total(), 2);
    }

    #[test]
    fn reregistering_keeps_state() {
        let mut reg = MetricsRegistry::new();
        reg.register_histogram("d", 0.0, 1.0, 4);
        reg.observe("d", 2.5);
        reg.register_histogram("d", 0.0, 10.0, 2); // ignored
        let snap = reg.snapshot();
        assert_eq!(snap.histograms[0].width, 1.0);
        assert_eq!(snap.histograms[0].count, 1);
    }

    #[test]
    fn snapshot_is_name_ordered_and_roundtrips() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("zeta", 1);
        reg.counter_add("alpha", 2);
        reg.gauge_set("mid", 0.5);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
        assert_eq!(snap.counter("alpha"), Some(2));
        assert_eq!(snap.gauge("mid"), Some(0.5));
        let json = snap.to_json().expect("plain data");
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("valid");
        assert_eq!(back, snap);
    }
}
