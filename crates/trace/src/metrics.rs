//! The metrics registry: counters, gauges, fixed-bin histograms.
//!
//! Metric names are dotted lowercase paths (`collector.gaps_open`,
//! `tent.temp_c`); the Prometheus exporter sanitizes them. Everything is
//! stored in `BTreeMap`s so a [`MetricsSnapshot`] always lists metrics in
//! name order — part of the byte-identical export contract.

use std::collections::BTreeMap;

use frostlab_analysis::stats::Histogram;

/// Live metric state while a campaign runs.
///
/// Counters are monotonic `u64`s, gauges are last-write-wins `f64`s, and
/// histograms must be registered (geometry up front) before
/// [`MetricsRegistry::observe`] feeds them — an observation against an
/// unregistered name is silently dropped, so optional instrumentation
/// can't poison a run with an implicit geometry.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, HistState>,
}

#[derive(Debug, Clone)]
struct HistState {
    hist: Histogram,
    sum: f64,
    count: u64,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `delta` to a (monotonic) counter, creating it at zero.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Set a gauge to its latest value, creating it on first write.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Register a fixed-bin histogram over `[min, min + width·bins)`.
    /// Re-registering an existing name keeps the original state.
    ///
    /// # Panics
    /// Panics if `width <= 0` or `bins == 0` (bad geometry is a
    /// scenario-definition bug).
    pub fn register_histogram(&mut self, name: &str, min: f64, width: f64, bins: usize) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| HistState {
                hist: Histogram::new(min, width, bins),
                sum: 0.0,
                count: 0,
            });
    }

    /// Feed one sample into a registered histogram. Unregistered names
    /// and NaN samples are ignored.
    pub fn observe(&mut self, name: &str, value: f64) {
        if value.is_nan() {
            return;
        }
        if let Some(state) = self.histograms.get_mut(name) {
            state.hist.push(value);
            state.sum += value;
            state.count += 1;
        }
    }

    /// Current value of a counter (`None` until first increment).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Current value of a gauge (`None` until first write).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Freeze the registry into a serializable, name-ordered snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(name, &value)| CounterSample {
                    name: name.clone(),
                    value,
                })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(name, &value)| GaugeSample {
                    name: name.clone(),
                    value,
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(name, state)| HistogramSample {
                    name: name.clone(),
                    min: state.hist.min,
                    width: state.hist.width,
                    counts: state.hist.counts.clone(),
                    underflow: state.hist.underflow,
                    overflow: state.hist.overflow,
                    sum: state.sum,
                    count: state.count,
                })
                .collect(),
        }
    }
}

/// One counter's frozen value.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CounterSample {
    /// Metric name.
    pub name: String,
    /// Monotonic count.
    pub value: u64,
}

/// One gauge's frozen value.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Last value written.
    pub value: f64,
}

/// One histogram's frozen state (geometry + counts + sum).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// Left edge of the first bin.
    pub min: f64,
    /// Bin width.
    pub width: f64,
    /// Per-bin counts.
    pub counts: Vec<u64>,
    /// Samples below `min`.
    pub underflow: u64,
    /// Samples at or above the last edge.
    pub overflow: u64,
    /// Sum of all observed samples.
    pub sum: f64,
    /// Number of observed samples.
    pub count: u64,
}

impl HistogramSample {
    /// Rehydrate the [`Histogram`] for merging or percentile queries.
    pub fn to_histogram(&self) -> Histogram {
        Histogram {
            min: self.min,
            width: self.width,
            counts: self.counts.clone(),
            underflow: self.underflow,
            overflow: self.overflow,
        }
    }
}

/// Name-ordered, serializable snapshot of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, by name.
    pub counters: Vec<CounterSample>,
    /// All gauges, by name.
    pub gauges: Vec<GaugeSample>,
    /// All histograms, by name.
    pub histograms: Vec<HistogramSample>,
}

impl MetricsSnapshot {
    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Pretty JSON of the snapshot.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("collector.attempts_total", 3);
        reg.counter_add("collector.attempts_total", 2);
        reg.gauge_set("tent.temp_c", -12.0);
        reg.gauge_set("tent.temp_c", -9.5);
        assert_eq!(reg.counter("collector.attempts_total"), Some(5));
        assert_eq!(reg.gauge("tent.temp_c"), Some(-9.5));
        assert_eq!(reg.counter("nope"), None);
        assert_eq!(reg.gauge("nope"), None);
    }

    #[test]
    fn histograms_require_registration() {
        let mut reg = MetricsRegistry::new();
        reg.observe("tent.temp_c_dist", -5.0); // dropped: not registered
        reg.register_histogram("tent.temp_c_dist", -40.0, 1.0, 80);
        reg.observe("tent.temp_c_dist", -5.0);
        reg.observe("tent.temp_c_dist", -5.5);
        reg.observe("tent.temp_c_dist", f64::NAN); // ignored
        let snap = reg.snapshot();
        let h = &snap.histograms[0];
        assert_eq!(h.count, 2);
        assert!((h.sum + 10.5).abs() < 1e-12);
        assert_eq!(h.counts.iter().sum::<u64>(), 2);
        assert_eq!(h.to_histogram().total(), 2);
    }

    #[test]
    fn reregistering_keeps_state() {
        let mut reg = MetricsRegistry::new();
        reg.register_histogram("d", 0.0, 1.0, 4);
        reg.observe("d", 2.5);
        reg.register_histogram("d", 0.0, 10.0, 2); // ignored
        let snap = reg.snapshot();
        assert_eq!(snap.histograms[0].width, 1.0);
        assert_eq!(snap.histograms[0].count, 1);
    }

    #[test]
    fn snapshot_is_name_ordered_and_roundtrips() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("zeta", 1);
        reg.counter_add("alpha", 2);
        reg.gauge_set("mid", 0.5);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
        assert_eq!(snap.counter("alpha"), Some(2));
        assert_eq!(snap.gauge("mid"), Some(0.5));
        let json = snap.to_json().expect("plain data");
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("valid");
        assert_eq!(back, snap);
    }
}
