//! The [`Tracer`] handle and its configuration.
//!
//! ## Ownership rules
//!
//! Exactly one `Tracer` exists per campaign, owned by the campaign
//! context. Phases and context methods record through `&mut` access; at
//! campaign end the context calls [`Tracer::finish`], which yields the
//! frozen [`CampaignTrace`] (or `None` for the default disabled tracer).
//! The ensemble engine builds and runs each seed's scenario on one worker
//! thread, so per-seed buffers never need locks.
//!
//! ## Zero cost when disabled
//!
//! [`Tracer::disabled`] holds no buffer; every record method starts with
//! a `None` check and returns. Call sites that would allocate to build an
//! event (e.g. `format!` a track name) guard on [`Tracer::is_enabled`] or
//! one of the per-category accessors first.

use frostlab_simkern::time::SimTime;

use crate::event::{FieldValue, TraceEvent};
use crate::metrics::{MetricsRegistry, MetricsSnapshot};

/// Which event categories a tracer records. Metrics are always collected
/// when the tracer is enabled; the flags gate only the (much bulkier)
/// event stream, so an ensemble sweep can run metrics-only buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Record one span per phase per tick (`phase/<name>` tracks).
    pub phase_spans: bool,
    /// Record host job-run spans (`host/<id>` tracks).
    pub host_spans: bool,
    /// Record collection attempts and healed-gap spans.
    pub collection_events: bool,
    /// Record watchdog incident open/resolve and fault instants.
    pub incident_events: bool,
    /// Hard cap on buffered events; once reached, further events are
    /// counted in [`CampaignTrace::dropped_events`] instead of stored.
    /// The cap is part of the determinism contract (same cap, same
    /// drops), never a race.
    pub max_events: usize,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            phase_spans: true,
            host_spans: true,
            collection_events: true,
            incident_events: true,
            max_events: 1 << 22,
        }
    }
}

impl TraceConfig {
    /// Metrics only: no event stream at all. The right shape for large
    /// ensemble sweeps, where per-seed event buffers would dominate
    /// memory but aggregated metric snapshots are wanted.
    pub fn metrics_only() -> TraceConfig {
        TraceConfig {
            phase_spans: false,
            host_spans: false,
            collection_events: false,
            incident_events: false,
            max_events: 0,
        }
    }
}

#[derive(Debug)]
struct TraceBuffer {
    cfg: TraceConfig,
    base: SimTime,
    events: Vec<TraceEvent>,
    seq: u64,
    dropped: u64,
    metrics: MetricsRegistry,
}

impl TraceBuffer {
    fn record(
        &mut self,
        track: &str,
        name: &str,
        start: SimTime,
        end: Option<SimTime>,
        fields: &[(&str, FieldValue)],
    ) {
        if self.events.len() >= self.cfg.max_events {
            self.dropped += 1;
            return;
        }
        self.events.push(TraceEvent {
            seq: self.seq,
            track: track.to_string(),
            name: name.to_string(),
            start,
            end,
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
        self.seq += 1;
    }
}

/// The per-campaign trace handle. See the module docs for ownership and
/// cost rules.
#[derive(Debug, Default)]
pub struct Tracer {
    inner: Option<Box<TraceBuffer>>,
}

impl Tracer {
    /// The no-op tracer — the campaign default. Records nothing, costs a
    /// `None` check per call, and [`Tracer::finish`]es to `None`.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// A live tracer. `base` anchors exported timestamps (the campaign
    /// start); every event is stamped with absolute sim-time regardless.
    pub fn enabled(cfg: TraceConfig, base: SimTime) -> Tracer {
        Tracer {
            inner: Some(Box::new(TraceBuffer {
                cfg,
                base,
                events: Vec::new(),
                seq: 0,
                dropped: 0,
                metrics: MetricsRegistry::new(),
            })),
        }
    }

    /// Is this tracer recording at all?
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Should callers emit per-phase step spans?
    pub fn phase_spans_enabled(&self) -> bool {
        self.inner.as_ref().is_some_and(|b| b.cfg.phase_spans)
    }

    /// Should callers emit host job-run spans?
    pub fn host_spans_enabled(&self) -> bool {
        self.inner.as_ref().is_some_and(|b| b.cfg.host_spans)
    }

    /// Should callers emit collection attempt/gap events?
    pub fn collection_events_enabled(&self) -> bool {
        self.inner.as_ref().is_some_and(|b| b.cfg.collection_events)
    }

    /// Should callers emit incident and fault instants?
    pub fn incident_events_enabled(&self) -> bool {
        self.inner.as_ref().is_some_and(|b| b.cfg.incident_events)
    }

    /// Record a completed sim-time span on `track`.
    pub fn span(
        &mut self,
        track: &str,
        name: &str,
        start: SimTime,
        end: SimTime,
        fields: &[(&str, FieldValue)],
    ) {
        if let Some(buf) = self.inner.as_mut() {
            buf.record(track, name, start, Some(end), fields);
        }
    }

    /// Record an instant event on `track`.
    pub fn instant(&mut self, track: &str, name: &str, at: SimTime, fields: &[(&str, FieldValue)]) {
        if let Some(buf) = self.inner.as_mut() {
            buf.record(track, name, at, None, fields);
        }
    }

    /// Add to a counter metric (no-op when disabled or `delta == 0`).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        if delta == 0 {
            return;
        }
        if let Some(buf) = self.inner.as_mut() {
            buf.metrics.counter_add(name, delta);
        }
    }

    /// Add to a labeled counter series (no-op when disabled or `delta == 0`).
    pub fn counter_add_labeled(&mut self, name: &str, labels: &[(&str, &str)], delta: u64) {
        if delta == 0 {
            return;
        }
        if let Some(buf) = self.inner.as_mut() {
            buf.metrics.counter_add_labeled(name, labels, delta);
        }
    }

    /// Set a gauge metric (no-op when disabled).
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        if let Some(buf) = self.inner.as_mut() {
            buf.metrics.gauge_set(name, value);
        }
    }

    /// Set a labeled gauge series (no-op when disabled).
    pub fn gauge_set_labeled(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        if let Some(buf) = self.inner.as_mut() {
            buf.metrics.gauge_set_labeled(name, labels, value);
        }
    }

    /// Register a histogram metric (no-op when disabled).
    pub fn register_histogram(&mut self, name: &str, min: f64, width: f64, bins: usize) {
        if let Some(buf) = self.inner.as_mut() {
            buf.metrics.register_histogram(name, min, width, bins);
        }
    }

    /// Register a labeled histogram series (no-op when disabled).
    pub fn register_histogram_labeled(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        min: f64,
        width: f64,
        bins: usize,
    ) {
        if let Some(buf) = self.inner.as_mut() {
            buf.metrics
                .register_histogram_labeled(name, labels, min, width, bins);
        }
    }

    /// Feed a registered histogram (no-op when disabled or unregistered).
    pub fn observe(&mut self, name: &str, value: f64) {
        if let Some(buf) = self.inner.as_mut() {
            buf.metrics.observe(name, value);
        }
    }

    /// Feed a registered labeled histogram series (no-op when disabled
    /// or unregistered).
    pub fn observe_labeled(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        if let Some(buf) = self.inner.as_mut() {
            buf.metrics.observe_labeled(name, labels, value);
        }
    }

    /// Events buffered so far (0 when disabled).
    pub fn events_recorded(&self) -> usize {
        self.inner.as_ref().map_or(0, |b| b.events.len())
    }

    /// The buffered event stream, in emission order (empty when
    /// disabled). The flight recorder tails this with a cursor each tick.
    pub fn events(&self) -> &[TraceEvent] {
        self.inner.as_ref().map_or(&[], |b| &b.events)
    }

    /// Freeze into the campaign's trace. `None` for the disabled tracer.
    /// If the event cap dropped anything, the loss is surfaced as a
    /// `trace.dropped_events` counter so scrapes and reports can warn.
    pub fn finish(self) -> Option<CampaignTrace> {
        self.inner.map(|mut buf| {
            if buf.dropped > 0 {
                buf.metrics.counter_add("trace.dropped_events", buf.dropped);
            }
            CampaignTrace {
                base: buf.base,
                metrics: buf.metrics.snapshot(),
                dropped_events: buf.dropped,
                events: buf.events,
            }
        })
    }
}

/// A finished campaign's frozen trace: the event stream plus the final
/// metrics snapshot, all in sim-time.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignTrace {
    /// Timestamp anchor (the campaign start) for relative exports.
    pub base: SimTime,
    /// Every recorded event, in emission (`seq`) order.
    pub events: Vec<TraceEvent>,
    /// Events discarded after [`TraceConfig::max_events`] was reached.
    pub dropped_events: u64,
    /// The metrics registry's end-of-campaign snapshot.
    pub metrics: MetricsSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;
    use frostlab_simkern::time::SimDuration;

    const T0: SimTime = SimTime::ZERO;

    #[test]
    fn disabled_tracer_records_nothing_and_finishes_to_none() {
        let mut t = Tracer::disabled();
        assert!(!t.is_enabled());
        assert!(!t.phase_spans_enabled());
        t.span("phase/weather", "step", T0, T0 + SimDuration::secs(60), &[]);
        t.instant("watchdog", "incident-open", T0, &[]);
        t.counter_add("c", 1);
        t.gauge_set("g", 1.0);
        t.register_histogram("h", 0.0, 1.0, 4);
        t.observe("h", 0.5);
        assert_eq!(t.events_recorded(), 0);
        assert!(t.finish().is_none());
    }

    #[test]
    fn enabled_tracer_buffers_events_in_sequence() {
        let mut t = Tracer::enabled(TraceConfig::default(), T0);
        assert!(t.is_enabled() && t.phase_spans_enabled());
        t.span(
            "phase/weather",
            "step",
            T0,
            T0 + SimDuration::secs(60),
            &[("tick", FieldValue::U64(0))],
        );
        t.instant("watchdog", "incident-open", T0, &[]);
        let trace = t.finish().expect("enabled");
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.events[0].seq, 0);
        assert_eq!(trace.events[1].seq, 1);
        assert_eq!(trace.events[1].end, None);
        assert_eq!(trace.dropped_events, 0);
        assert_eq!(trace.base, T0);
    }

    #[test]
    fn metrics_only_config_gates_all_event_categories() {
        let cfg = TraceConfig::metrics_only();
        let mut t = Tracer::enabled(cfg, T0);
        assert!(t.is_enabled());
        assert!(!t.phase_spans_enabled());
        assert!(!t.host_spans_enabled());
        assert!(!t.collection_events_enabled());
        assert!(!t.incident_events_enabled());
        // max_events = 0: even direct records are counted as dropped.
        t.instant("x", "y", T0, &[]);
        t.counter_add("c", 2);
        let trace = t.finish().expect("enabled");
        assert!(trace.events.is_empty());
        assert_eq!(trace.dropped_events, 1);
        assert_eq!(trace.metrics.counter("c"), Some(2));
    }

    #[test]
    fn event_cap_drops_deterministically() {
        let cfg = TraceConfig {
            max_events: 2,
            ..TraceConfig::default()
        };
        let mut t = Tracer::enabled(cfg, T0);
        for i in 0..5 {
            t.instant("x", "y", T0 + SimDuration::secs(i), &[]);
        }
        let trace = t.finish().expect("enabled");
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.dropped_events, 3);
    }

    #[test]
    fn dropped_events_surface_as_a_counter_metric() {
        let cfg = TraceConfig {
            max_events: 1,
            ..TraceConfig::default()
        };
        let mut t = Tracer::enabled(cfg, T0);
        for i in 0..4 {
            t.instant("x", "y", T0 + SimDuration::secs(i), &[]);
        }
        let trace = t.finish().expect("enabled");
        assert_eq!(trace.dropped_events, 3);
        assert_eq!(trace.metrics.counter("trace.dropped_events"), Some(3));

        // And a trace that dropped nothing does not grow the counter.
        let mut clean = Tracer::enabled(TraceConfig::default(), T0);
        clean.instant("x", "y", T0, &[]);
        let trace = clean.finish().expect("enabled");
        assert_eq!(trace.metrics.counter("trace.dropped_events"), None);
    }

    #[test]
    fn labeled_metrics_pass_through_and_events_are_tailable() {
        let mut t = Tracer::enabled(TraceConfig::default(), T0);
        t.counter_add_labeled("resets", &[("zone", "z1")], 2);
        t.gauge_set_labeled("temp", &[("zone", "z1")], -3.5);
        t.register_histogram_labeled("dist", &[("zone", "z1")], 0.0, 1.0, 4);
        t.observe_labeled("dist", &[("zone", "z1")], 1.5);
        assert!(t.events().is_empty());
        t.instant("watchdog", "incident-open", T0, &[]);
        assert_eq!(t.events().len(), 1);
        assert_eq!(t.events()[0].name, "incident-open");
        let trace = t.finish().expect("enabled");
        assert_eq!(trace.metrics.counters.len(), 1);
        assert_eq!(
            trace.metrics.counters[0].labels,
            vec![("zone".to_string(), "z1".to_string())]
        );
        assert_eq!(
            trace.metrics.gauge_labeled("temp", &[("zone", "z1")]),
            Some(-3.5)
        );
        assert_eq!(trace.metrics.histograms.len(), 1);
        assert_eq!(trace.metrics.histograms[0].count, 1);
    }

    #[test]
    fn disabled_tracer_labeled_calls_are_inert() {
        let mut t = Tracer::disabled();
        t.counter_add_labeled("c", &[("k", "v")], 1);
        t.gauge_set_labeled("g", &[("k", "v")], 1.0);
        t.register_histogram_labeled("h", &[("k", "v")], 0.0, 1.0, 4);
        t.observe_labeled("h", &[("k", "v")], 0.5);
        assert!(t.events().is_empty());
        assert!(t.finish().is_none());
    }
}
