//! One pack-verify cycle.
//!
//! The cycle the paper describes: `tar` the tree, compress it, `md5sum` the
//! result, compare against the golden value computed at install time; keep
//! the tarball only when the hashes differ. A memory bit flip during the
//! run corrupts one bit of the in-flight compressed stream, which makes the
//! hash differ *and* leaves a stored archive in which exactly one
//! compression block fails its CRC — reproducing the §4.2.2 forensics.
//!
//! Page-operation accounting uses the **modeled** (paper-scale) tree size:
//! the simulated pipeline runs on a scaled-down tree for speed, but the
//! exposure estimate (T3's ≈ 3.2 × 10⁹ page ops) must reflect the ~450 MB
//! the real hosts shoveled through memory every 10 minutes.

use std::sync::Arc;

use frostlab_compress::archive::{archive, FileEntry};
use frostlab_compress::block::compress;
use frostlab_compress::md5::md5_hex;
use frostlab_simkern::rng::Rng;

use crate::source_tree::{generate, TreeConfig};

/// Configuration for the job pipeline.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Compressor block size (input bytes per block).
    pub block_size: usize,
    /// Actual synthetic tree size used in simulation, bytes.
    pub tree_bytes: usize,
    /// The tree size the accounting *models* (the real kernel tree), bytes.
    pub modeled_tree_bytes: u64,
    /// Memory passes over the data per run (tar read + write, compress
    /// read + write, hash read ≈ 5 half-passes ⇒ ~2.5 effective full
    /// passes; the paper's own estimate folds this into its ballpark).
    pub memory_passes: f64,
    /// Page size for exposure accounting, bytes.
    pub page_bytes: u64,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig {
            block_size: 512,
            // 396 × 512 B so the tarball (content + tar headers) yields a
            // block count close to the paper's 396.
            tree_bytes: 180 * 1024,
            modeled_tree_bytes: 450 * 1024 * 1024,
            memory_passes: 1.0,
            page_bytes: 4096,
        }
    }
}

impl JobConfig {
    /// Page operations one run contributes to the exposure estimate.
    ///
    /// Calibration: the paper estimates ≈ 3.2 × 10⁹ page ops over 27 627
    /// runs ⇒ ≈ 116 k page ops per run ⇒ passes ≈ 1 over a ~450 MB tree
    /// with 4 KiB pages.
    pub fn page_ops_per_run(&self) -> u64 {
        ((self.modeled_tree_bytes as f64 / self.page_bytes as f64) * self.memory_passes) as u64
    }
}

/// Outcome of one pack-verify run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The md5 of this run's tarball (hex).
    pub hash: String,
    /// Did it match the golden value?
    pub hash_ok: bool,
    /// The compressed archive — kept only when the hash differed
    /// ("if the results differ, the packed tarball is stored").
    pub stored_archive: Option<Vec<u8>>,
    /// Page operations this run contributed to memory exposure.
    pub page_ops: u64,
    /// Modeled wall-clock duration of the run, seconds (drives the
    /// utilization/power profile in the orchestrator).
    pub duration_secs: f64,
}

/// The shared, host-independent part of the job: the reference tree, its
/// tarball and the golden compressed bytes. Built once per experiment (the
/// tar → compress of the tree is the expensive step) and shared into each
/// host's [`JobRunner`] — all hosts packed the *same* kernel version, so
/// the byte buffers live behind `Arc`s: a 10,000-host fleet holds one copy
/// of the ~180 KiB tarball, not ten thousand.
#[derive(Debug, Clone)]
pub struct JobTemplate {
    config: JobConfig,
    tar_bytes: Arc<Vec<u8>>,
    clean_compressed: Arc<Vec<u8>>,
    golden_hash: String,
}

impl JobTemplate {
    /// Build the template: generate the tree, archive it, compress it,
    /// compute the golden hash.
    pub fn build(config: JobConfig) -> JobTemplate {
        let tree_cfg = TreeConfig {
            total_bytes: config.tree_bytes,
            ..TreeConfig::default()
        };
        // Fixed tree seed: every host packs the same reference tree.
        let tree: Vec<FileEntry> = generate(&tree_cfg, 0x2632);
        let tar_bytes = archive(&tree);
        let clean_compressed = compress(&tar_bytes, config.block_size);
        let golden_hash = md5_hex(&clean_compressed);
        JobTemplate {
            config,
            tar_bytes: Arc::new(tar_bytes),
            clean_compressed: Arc::new(clean_compressed),
            golden_hash,
        }
    }
}

/// A host's job runner: owns the tree, the golden hash, and a corruption
/// RNG stream.
#[derive(Debug, Clone)]
pub struct JobRunner {
    config: JobConfig,
    tar_bytes: Arc<Vec<u8>>,
    golden_hash: String,
    /// Cached clean compressed archive (shared with the template and every
    /// other runner). The pipeline is deterministic, so a fault-free run
    /// reproduces these bytes exactly; caching them lets a three-month
    /// campaign (tens of thousands of runs) execute quickly while
    /// corrupted runs still exercise the full real pipeline.
    clean_compressed: Arc<Vec<u8>>,
    corrupt_rng: Rng,
    /// Modeled run duration, seconds.
    duration_secs: f64,
}

impl JobRunner {
    /// Build the runner: generates the tree, computes the golden hash
    /// ("an initial value calculated before installation").
    pub fn new(config: JobConfig, host_seed_rng: &Rng) -> Self {
        Self::from_template(&JobTemplate::build(config), host_seed_rng)
    }

    /// Build from a shared [`JobTemplate`] (the fleet-construction fast
    /// path: the expensive tar+compress happens once per experiment).
    pub fn from_template(template: &JobTemplate, host_seed_rng: &Rng) -> Self {
        JobRunner {
            corrupt_rng: host_seed_rng.derive("job-corruption"),
            clean_compressed: Arc::clone(&template.clean_compressed),
            golden_hash: template.golden_hash.clone(),
            // The real run took a couple of minutes of mostly-CPU work on
            // 2000s hardware; model 150 s ± nothing (determinism).
            duration_secs: 150.0,
            tar_bytes: Arc::clone(&template.tar_bytes),
            config: template.config.clone(),
        }
    }

    /// The golden md5 (hex) computed at install time.
    pub fn golden_hash(&self) -> &str {
        &self.golden_hash
    }

    /// Size of the clean compressed archive, bytes.
    pub fn compressed_len(&self) -> usize {
        self.clean_compressed.len()
    }

    /// Number of compression blocks per archive.
    pub fn block_count(&self) -> usize {
        self.tar_bytes.len().div_ceil(self.config.block_size)
    }

    /// Execute one cycle. `bit_flips` is the number of memory bit flips the
    /// fault layer scheduled into this run (0 for a clean run).
    ///
    /// A clean run verifies the cached archive (the deterministic pipeline
    /// always reproduces it byte-for-byte); a faulted run re-runs the full
    /// tar → compress pipeline and corrupts the in-flight buffer.
    pub fn run(&mut self, bit_flips: u32) -> RunOutcome {
        if bit_flips == 0 {
            // The real hosts recomputed this every cycle and overwrote the
            // previous tarball; the deterministic pipeline reproduces the
            // golden bytes exactly (validated at construction and by
            // `run_full`), so the fast path returns the golden hash without
            // re-deriving a byte-identical archive. Campaigns execute tens
            // of thousands of clean runs; this is what makes them cheap.
            return RunOutcome {
                hash_ok: true,
                stored_archive: None,
                page_ops: self.config.page_ops_per_run(),
                duration_secs: self.duration_secs,
                hash: self.golden_hash.clone(),
            };
        }
        // The pipeline is deterministic: recompressing `tar_bytes` always
        // reproduces `clean_compressed` byte-for-byte (validated at
        // template construction and by `run_full`), and the scheduled bit
        // flips land in the *buffered output*. Start from the cached bytes
        // instead of burning a real compress per faulted run — at fleet
        // scale a single day sees hundreds of them.
        let mut packed = self.clean_compressed.as_ref().clone();
        for _ in 0..bit_flips {
            // A flipped bit lands somewhere in the buffered archive.
            let byte = self.corrupt_rng.below(packed.len() as u64) as usize;
            let bit = self.corrupt_rng.below(8) as u8;
            packed[byte] ^= 1 << bit;
        }
        let hash = md5_hex(&packed);
        let hash_ok = hash == self.golden_hash;
        RunOutcome {
            hash_ok,
            stored_archive: if hash_ok { None } else { Some(packed) },
            page_ops: self.config.page_ops_per_run(),
            duration_secs: self.duration_secs,
            hash,
        }
    }

    /// Execute one cycle through the *full* pipeline unconditionally
    /// (benchmarks and validation; the orchestrator uses [`JobRunner::run`]).
    pub fn run_full(&mut self, bit_flips: u32) -> RunOutcome {
        let packed = compress(&self.tar_bytes, self.config.block_size);
        debug_assert_eq!(&packed, self.clean_compressed.as_ref());
        self.run(bit_flips)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frostlab_compress::recover::recover;

    fn runner(seed: u64) -> JobRunner {
        JobRunner::new(JobConfig::default(), &Rng::new(seed))
    }

    #[test]
    fn clean_runs_match_golden() {
        let mut r = runner(1);
        for _ in 0..5 {
            let o = r.run(0);
            assert!(o.hash_ok, "clean run must match golden");
            assert!(o.stored_archive.is_none());
            assert_eq!(o.hash, r.golden_hash());
        }
    }

    #[test]
    fn bit_flip_produces_wrong_hash_and_stores_archive() {
        let mut r = runner(2);
        let o = r.run(1);
        assert!(!o.hash_ok);
        assert!(o.stored_archive.is_some());
        assert_ne!(o.hash, r.golden_hash());
    }

    #[test]
    fn forensics_single_corrupted_block() {
        // The full §4.2.2 chain: wrong hash → keep tarball → recover →
        // one bad block out of ~396.
        let mut r = runner(3);
        let o = r.run(1);
        let archive = o.stored_archive.expect("wrong hash stores the archive");
        let report = recover(&archive);
        assert!(
            report.total_blocks() >= 300 && report.total_blocks() <= 500,
            "block count {} should be near the paper's 396",
            report.total_blocks()
        );
        // One flipped bit damages at most one block (it can also land in
        // stream framing, in which case blocks themselves all verify).
        assert!(
            report.corrupted_count() <= 1,
            "corrupted {}",
            report.corrupted_count()
        );
    }

    #[test]
    fn block_count_near_paper() {
        let r = runner(4);
        let n = r.block_count();
        assert!((300..=500).contains(&n), "block count {n}");
    }

    #[test]
    fn page_ops_calibration() {
        // ≈ 116 k page ops per run so that 27 627 runs ≈ 3.2e9.
        let cfg = JobConfig::default();
        let per_run = cfg.page_ops_per_run();
        assert!((90_000..150_000).contains(&per_run), "page ops {per_run}");
        let total = per_run * 27_627;
        assert!(
            (2.4e9..4.0e9).contains(&(total as f64)),
            "campaign exposure {total}"
        );
    }

    #[test]
    fn golden_hash_is_stable_across_hosts() {
        // Same tree, same pipeline ⇒ all hosts share the golden value.
        let a = runner(10);
        let b = runner(999);
        assert_eq!(a.golden_hash(), b.golden_hash());
    }

    #[test]
    fn two_flips_still_detected() {
        let mut r = runner(5);
        let o = r.run(2);
        assert!(!o.hash_ok);
    }
}
