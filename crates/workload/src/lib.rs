//! # frostlab-workload
//!
//! The synthetic load of §3.5, end to end:
//!
//! > "All servers execute a synthetic workload, which consist of packing a
//! > Linux kernel source directory with the standard tar and bzip2 archive
//! > programs. After packing, each compressed tarball is verified by
//! > calculating its md5sum hash function and comparing the result with an
//! > initial value calculated before installation. If the results differ,
//! > the packed tarball is stored. If not, the tarball is overwritten in
//! > the next cycle. Each host executes its synthetic load every 10
//! > minutes … each host sleeps for 0 to 119 seconds before commencing."
//!
//! * [`source_tree`] — a deterministic synthetic "Linux kernel source
//!   directory" (plausible paths, C-flavoured content);
//! * [`job`] — one pack-verify cycle over the real tar → block-compress →
//!   MD5 pipeline from `frostlab-compress`, with a bit-flip hook that
//!   corrupts the in-flight archive exactly the way a bad non-ECC DIMM
//!   would;
//! * [`schedule`] — the 10-minute cadence with 0–119 s desynchronization
//!   jitter;
//! * [`stats`] — run/error bookkeeping that feeds the T2/T3 reproductions
//!   (5 wrong hashes in 27 627 runs; the page-operation exposure estimate).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod job;
pub mod schedule;
pub mod source_tree;
pub mod stats;

pub use job::{JobConfig, JobRunner, JobTemplate, RunOutcome};
pub use schedule::LoadSchedule;
pub use stats::WorkloadStats;
