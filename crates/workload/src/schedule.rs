//! The 10-minute load cadence with desynchronization jitter.
//!
//! §3.5: every host runs the load every 10 minutes, sleeping 0–119 seconds
//! first so the fleet does not hammer the network (and the shared switch
//! uplink) in lockstep. [`LoadSchedule`] produces each host's next start
//! time from its own derived RNG stream.

use frostlab_simkern::rng::Rng;
use frostlab_simkern::time::{SimDuration, SimTime};

/// Jitter bound from the paper: 0–119 seconds.
pub const MAX_JITTER_SECS: i64 = 119;

/// The periodic schedule of one host's synthetic load.
#[derive(Debug, Clone)]
pub struct LoadSchedule {
    /// Cycle period (paper: 10 minutes).
    pub period: SimDuration,
    rng: Rng,
    /// Cycle boundary the next run belongs to.
    next_cycle_start: SimTime,
}

impl LoadSchedule {
    /// Create a schedule starting from the host's install time.
    pub fn new(install_at: SimTime, host_seed_rng: &Rng) -> Self {
        LoadSchedule {
            period: SimDuration::minutes(10),
            rng: host_seed_rng.derive("load-schedule"),
            next_cycle_start: install_at,
        }
    }

    /// The start time of the next run: cycle boundary + fresh jitter.
    /// Advances the schedule by one period.
    pub fn next_run(&mut self) -> SimTime {
        let jitter = SimDuration::secs(self.rng.range_i64(0, MAX_JITTER_SECS));
        let start = self.next_cycle_start + jitter;
        self.next_cycle_start += self.period;
        start
    }

    /// Peek the upcoming cycle boundary without consuming it.
    pub fn next_cycle_start(&self) -> SimTime {
        self.next_cycle_start
    }

    /// Skip cycles while the host is hung/off; resumes at the first cycle
    /// boundary at or after `t`.
    pub fn resume_at(&mut self, t: SimTime) {
        while self.next_cycle_start < t {
            self.next_cycle_start += self.period;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(seed: u64) -> LoadSchedule {
        LoadSchedule::new(SimTime::from_date(2010, 2, 19), &Rng::new(seed))
    }

    #[test]
    fn runs_every_ten_minutes_with_jitter() {
        let mut s = schedule(1);
        let t0 = SimTime::from_date(2010, 2, 19);
        for i in 0..100 {
            let run = s.next_run();
            let boundary = t0 + SimDuration::minutes(10 * i);
            let offset = (run - boundary).as_secs();
            assert!(
                (0..=MAX_JITTER_SECS).contains(&offset),
                "cycle {i}: jitter {offset}"
            );
        }
    }

    #[test]
    fn jitter_varies_between_cycles() {
        let mut s = schedule(2);
        let t0 = SimTime::from_date(2010, 2, 19);
        let offsets: Vec<i64> = (0..50)
            .map(|i| (s.next_run() - (t0 + SimDuration::minutes(10 * i))).as_secs())
            .collect();
        let distinct: std::collections::BTreeSet<i64> = offsets.iter().copied().collect();
        assert!(distinct.len() > 10, "jitter should vary, got {distinct:?}");
    }

    #[test]
    fn hosts_desynchronized() {
        let mut a = schedule(1);
        let mut b = LoadSchedule::new(
            SimTime::from_date(2010, 2, 19),
            &Rng::new(1).derive("host2"),
        );
        let same = (0..100).filter(|_| a.next_run() == b.next_run()).count();
        assert!(same < 10, "{same} collisions in 100 cycles");
    }

    #[test]
    fn resume_skips_hung_cycles() {
        let mut s = schedule(3);
        let _ = s.next_run();
        // Host hangs for three hours.
        let resume = SimTime::from_date(2010, 2, 19) + SimDuration::hours(3);
        s.resume_at(resume);
        let next = s.next_run();
        assert!(next >= resume);
        assert!(next - resume < SimDuration::minutes(10) + SimDuration::secs(MAX_JITTER_SECS));
    }

    #[test]
    fn deterministic() {
        let runs = |seed| {
            let mut s = schedule(seed);
            (0..20).map(|_| s.next_run()).collect::<Vec<_>>()
        };
        assert_eq!(runs(7), runs(7));
        assert_ne!(runs(7), runs(8));
    }

    #[test]
    fn about_144_runs_per_day() {
        let mut s = schedule(4);
        let day_end = SimTime::from_date(2010, 2, 20);
        let mut count = 0;
        loop {
            let run = s.next_run();
            if run >= day_end {
                break;
            }
            count += 1;
        }
        assert_eq!(count, 144);
    }
}
