//! Deterministic synthetic "Linux kernel source directory".
//!
//! The real experiment packed an actual kernel tree; we cannot ship one, so
//! we generate a file tree with the statistical properties that matter to
//! the pipeline: many small-to-medium text files, C-like content with
//! realistic compressibility (plenty of repeated keywords and structure,
//! but enough entropy that the compressor works for its living), plausible
//! paths, and — crucially — **bit-for-bit determinism** given a seed, so the
//! golden md5sum comparison is meaningful.

use frostlab_compress::archive::FileEntry;
use frostlab_simkern::rng::Rng;

/// Top-level directories of a kernel-ish tree.
const DIRS: [&str; 10] = [
    "kernel",
    "mm",
    "fs/ext3",
    "drivers/net",
    "drivers/char",
    "include/linux",
    "arch/x86/kernel",
    "net/ipv4",
    "lib",
    "sound/core",
];

/// Identifier fragments for fabricated symbol names.
const WORDS: [&str; 16] = [
    "sched", "page", "inode", "skb", "queue", "lock", "irq", "timer", "cache", "node", "vm",
    "sock", "dev", "buf", "ctx", "stat",
];

/// C keywords and skeleton fragments that dominate real kernel text.
const FRAGMENTS: [&str; 12] = [
    "static int ",
    "struct ",
    "return -EINVAL;\n",
    "spin_lock_irqsave(&",
    "if (unlikely(!",
    "#define ",
    "EXPORT_SYMBOL(",
    "list_for_each_entry(",
    "\tgoto out;\n",
    "unsigned long flags;\n",
    "/* paranoia check */\n",
    "kfree(",
];

/// Configuration for tree generation.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Target total content bytes (headers excluded).
    pub total_bytes: usize,
    /// Mean file size in bytes (lognormal-ish spread around it).
    pub mean_file_bytes: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            total_bytes: 200 * 1024,
            mean_file_bytes: 6 * 1024,
        }
    }
}

/// Generate a deterministic synthetic source tree.
pub fn generate(config: &TreeConfig, seed: u64) -> Vec<FileEntry> {
    let mut rng = Rng::new(seed).derive("source-tree");
    let mut entries = Vec::new();
    let mut produced = 0usize;
    let mut file_no = 0u32;
    while produced < config.total_bytes {
        let dir = DIRS[(file_no as usize) % DIRS.len()];
        let word = rng.choose(&WORDS);
        let path = format!("linux-2.6.32/{dir}/{word}_{file_no:04}.c");
        // Lognormal-ish size: median near mean_file_bytes, capped.
        let size = (config.mean_file_bytes as f64 * rng.lognormal(0.0, 0.6))
            .clamp(256.0, 64.0 * 1024.0) as usize;
        let size = size.min(config.total_bytes - produced).max(64);
        let data = synth_c_file(&mut rng, size);
        produced += data.len();
        entries.push(FileEntry {
            path,
            mode: 0o644,
            mtime: 1_266_000_000 + u64::from(file_no) * 97,
            data,
        });
        file_no += 1;
    }
    // Deterministic ordering (generation is already ordered, but make the
    // invariant explicit against future edits).
    entries.sort_by(|a, b| a.path.cmp(&b.path));
    entries
}

/// Fabricate `size` bytes of C-flavoured text.
fn synth_c_file(rng: &mut Rng, size: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(size + 64);
    out.extend_from_slice(b"/*\n * Auto-generated synthetic kernel source (frostlab).\n */\n");
    while out.len() < size {
        match rng.below(10) {
            0..=5 => {
                // A statement-ish line.
                let frag = rng.choose(&FRAGMENTS);
                let w1 = rng.choose(&WORDS);
                let w2 = rng.choose(&WORDS);
                let n = rng.below(4096);
                out.extend_from_slice(frag.as_bytes());
                out.extend_from_slice(format!("{w1}_{w2}_{n}").as_bytes());
                out.extend_from_slice(b";\n");
            }
            6..=7 => {
                // A function skeleton.
                let w = rng.choose(&WORDS);
                let n = rng.below(999);
                out.extend_from_slice(
                    format!(
                        "static int {w}_probe_{n}(struct device *dev)\n{{\n\tint ret = 0;\n\tif (!dev)\n\t\treturn -ENODEV;\n\treturn ret;\n}}\n\n"
                    )
                    .as_bytes(),
                );
            }
            8 => {
                // A hex table row (higher-entropy content).
                let mut row = String::from("\t");
                for _ in 0..8 {
                    row.push_str(&format!("0x{:08x}, ", rng.next_u64() as u32));
                }
                row.push('\n');
                out.extend_from_slice(row.as_bytes());
            }
            _ => {
                let w = rng.choose(&WORDS);
                let n = rng.below(256);
                out.extend_from_slice(
                    format!("#define {}_MAX_{n} {n}\n", w.to_uppercase()).as_bytes(),
                );
            }
        }
    }
    out.truncate(size);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use frostlab_compress::block::compress;
    use frostlab_compress::md5::md5_hex;

    #[test]
    fn deterministic_given_seed() {
        let cfg = TreeConfig::default();
        let a = generate(&cfg, 42);
        let b = generate(&cfg, 42);
        assert_eq!(a, b);
        let tar_a = frostlab_compress::archive::archive(&a);
        let tar_b = frostlab_compress::archive::archive(&b);
        assert_eq!(md5_hex(&tar_a), md5_hex(&tar_b));
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = TreeConfig::default();
        let a = generate(&cfg, 1);
        let b = generate(&cfg, 2);
        let tar_a = frostlab_compress::archive::archive(&a);
        let tar_b = frostlab_compress::archive::archive(&b);
        assert_ne!(md5_hex(&tar_a), md5_hex(&tar_b));
    }

    #[test]
    fn size_near_target() {
        let cfg = TreeConfig {
            total_bytes: 100 * 1024,
            mean_file_bytes: 4 * 1024,
        };
        let tree = generate(&cfg, 3);
        let total: usize = tree.iter().map(|e| e.data.len()).sum();
        assert!(total >= cfg.total_bytes);
        assert!(total < cfg.total_bytes + 64 * 1024);
        assert!(tree.len() > 10, "should be many files, got {}", tree.len());
    }

    #[test]
    fn paths_are_unique_and_kernel_like() {
        let tree = generate(&TreeConfig::default(), 4);
        let mut paths: Vec<&str> = tree.iter().map(|e| e.path.as_str()).collect();
        let n = paths.len();
        paths.sort_unstable();
        paths.dedup();
        assert_eq!(paths.len(), n, "duplicate paths");
        assert!(tree.iter().all(|e| e.path.starts_with("linux-2.6.32/")));
        assert!(tree.iter().all(|e| e.path.ends_with(".c")));
    }

    #[test]
    fn content_compresses_like_source_code() {
        // Real kernel source bzip2s to roughly 20–25 % of its size. Our
        // synthetic text should land in a similar regime (3:1 – 8:1).
        let tree = generate(&TreeConfig::default(), 5);
        let tar = frostlab_compress::archive::archive(&tree);
        let packed = compress(&tar, 64 * 1024);
        let ratio = tar.len() as f64 / packed.len() as f64;
        assert!((2.5..12.0).contains(&ratio), "compression ratio {ratio}");
    }

    #[test]
    fn archives_roundtrip() {
        let tree = generate(&TreeConfig::default(), 6);
        let tar = frostlab_compress::archive::archive(&tree);
        let back = frostlab_compress::archive::unarchive(&tar).unwrap();
        assert_eq!(back, tree);
    }
}
