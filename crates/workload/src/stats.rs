//! Run and error bookkeeping across the fleet.
//!
//! Feeds the T2 reproduction (wrong-hash table: 5 / 27 627 runs; the
//! tent/basement split) and the T3 exposure estimate.

use std::collections::BTreeMap;

use frostlab_simkern::time::SimTime;

/// Where a host lives (for the tent/basement error split).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Placement {
    /// On the roof terrace, in the tent.
    Tent,
    /// In the basement control group.
    Basement,
}

impl std::fmt::Display for Placement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Placement::Tent => write!(f, "tent"),
            Placement::Basement => write!(f, "basement"),
        }
    }
}

/// One wrong-hash incident.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashError {
    /// Host that produced it (paper numbering).
    pub host: u32,
    /// Where that host lived.
    pub placement: Placement,
    /// When the run completed.
    pub at: SimTime,
}

/// Aggregated workload statistics.
#[derive(Debug, Clone, Default)]
pub struct WorkloadStats {
    total_runs: u64,
    runs_per_host: BTreeMap<u32, u64>,
    hash_errors: Vec<HashError>,
    total_page_ops: u64,
}

impl WorkloadStats {
    /// Fresh, empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one completed run.
    pub fn record_run(&mut self, host: u32, page_ops: u64) {
        self.total_runs += 1;
        *self.runs_per_host.entry(host).or_insert(0) += 1;
        self.total_page_ops = self.total_page_ops.saturating_add(page_ops);
    }

    /// Record a wrong-hash incident.
    pub fn record_hash_error(&mut self, host: u32, placement: Placement, at: SimTime) {
        self.hash_errors.push(HashError {
            host,
            placement,
            at,
        });
    }

    /// Total runs across the fleet.
    pub fn total_runs(&self) -> u64 {
        self.total_runs
    }

    /// Runs for one host.
    pub fn runs_for(&self, host: u32) -> u64 {
        self.runs_per_host.get(&host).copied().unwrap_or(0)
    }

    /// All wrong-hash incidents.
    pub fn hash_errors(&self) -> &[HashError] {
        &self.hash_errors
    }

    /// Wrong-hash count split by placement: `(tent, basement)`.
    pub fn hash_errors_by_placement(&self) -> (usize, usize) {
        let tent = self
            .hash_errors
            .iter()
            .filter(|e| e.placement == Placement::Tent)
            .count();
        (tent, self.hash_errors.len() - tent)
    }

    /// Wrong-hash counts per host.
    pub fn hash_errors_by_host(&self) -> BTreeMap<u32, usize> {
        let mut m = BTreeMap::new();
        for e in &self.hash_errors {
            *m.entry(e.host).or_insert(0) += 1;
        }
        m
    }

    /// Total memory page operations across the fleet.
    pub fn total_page_ops(&self) -> u64 {
        self.total_page_ops
    }

    /// Empirical wrong-hash ratio per run.
    pub fn error_ratio(&self) -> f64 {
        if self.total_runs == 0 {
            0.0
        } else {
            self.hash_errors.len() as f64 / self.total_runs as f64
        }
    }

    /// Empirical per-page-op fault ratio, the paper's "one in 570 million".
    pub fn fault_ratio_per_page_op(&self) -> Option<f64> {
        if self.total_page_ops == 0 || self.hash_errors.is_empty() {
            None
        } else {
            Some(self.hash_errors.len() as f64 / self.total_page_ops as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_t2_shape() {
        // Reproduce the exact bookkeeping of §4.2.2: 27 627 runs, two tent
        // hosts with one error each, one basement host with three.
        let mut s = WorkloadStats::new();
        for i in 0..27_627u64 {
            s.record_run((i % 18 + 1) as u32, 116_000);
        }
        let t = SimTime::from_date(2010, 3, 20);
        s.record_hash_error(3, Placement::Tent, t);
        s.record_hash_error(7, Placement::Tent, t);
        s.record_hash_error(12, Placement::Basement, t);
        s.record_hash_error(12, Placement::Basement, t);
        s.record_hash_error(12, Placement::Basement, t);

        assert_eq!(s.total_runs(), 27_627);
        assert_eq!(s.hash_errors().len(), 5);
        assert_eq!(s.hash_errors_by_placement(), (2, 3));
        let per_host = s.hash_errors_by_host();
        assert_eq!(per_host[&3], 1);
        assert_eq!(per_host[&7], 1);
        assert_eq!(per_host[&12], 3);
        // Exposure ≈ 3.2e9, ratio ≈ 1 / 640e6 (paper: ~1 / 570e6).
        let ratio = s.fault_ratio_per_page_op().unwrap();
        assert!((1.0 / 9e8..1.0 / 4e8).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn empty_stats() {
        let s = WorkloadStats::new();
        assert_eq!(s.total_runs(), 0);
        assert_eq!(s.error_ratio(), 0.0);
        assert_eq!(s.fault_ratio_per_page_op(), None);
        assert_eq!(s.runs_for(3), 0);
    }

    #[test]
    fn per_host_run_counts() {
        let mut s = WorkloadStats::new();
        s.record_run(1, 10);
        s.record_run(1, 10);
        s.record_run(2, 10);
        assert_eq!(s.runs_for(1), 2);
        assert_eq!(s.runs_for(2), 1);
        assert_eq!(s.total_page_ops(), 30);
    }
}
