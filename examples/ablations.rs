//! Ablation studies over the design choices DESIGN.md calls out.
//!
//! 1. **Tent interventions, one at a time** — which of R/I/B/F actually
//!    mattered? (The paper applied them cumulatively; we can un-bundle.)
//! 2. **ECC vs non-ECC** — would ECC DIMMs have eliminated the five wrong
//!    hashes? (The paper's §4.2.2 implies yes; we check.)
//! 3. **Fleet scaling** — how many machines would the experiment have
//!    needed to bound the failure rate usefully?
//!
//! ```sh
//! cargo run --release --example ablations
//! ```

use frostlab::analysis::report::{pct, Table};
use frostlab::analysis::stats::wilson_interval;
use frostlab::climate::presets;
use frostlab::climate::weather::WeatherModel;
use frostlab::core::config::ExperimentConfig;
use frostlab::ensemble::Ensemble;
use frostlab::faults::types::HostId;
use frostlab::faults::FaultInjector;
use frostlab::simkern::rng::Rng;
use frostlab::simkern::time::{SimDuration, SimTime};
use frostlab::thermal::enclosure::Enclosure;
use frostlab::thermal::tent::{Tent, TentConfig, TentParams};

fn tent_week_mean(config: TentConfig) -> f64 {
    let mut wx = WeatherModel::new(presets::helsinki_winter_2010(), 17);
    let start = SimTime::from_date(2010, 2, 20);
    let first = wx.sample_at(start);
    let mut tent = Tent::new(TentParams::default(), config, &first);
    let mut t = start;
    let end = start + SimDuration::days(7);
    let (mut sum, mut n) = (0.0, 0u64);
    while t <= end {
        let w = wx.sample_at(t);
        tent.step(60.0, &w, 1000.0);
        sum += tent.state().air_temp_c;
        n += 1;
        t += SimDuration::minutes(1);
    }
    sum / n as f64
}

fn ablation_tent() {
    // The six single-intervention weeks are independent simulations, so
    // they fan out over the ensemble engine; rows come back in case order
    // regardless of which week finishes first.
    let cases: [(&str, TentConfig); 6] = [
        ("unmodified", TentConfig::initial()),
        (
            "R only (foil)",
            TentConfig {
                foil: true,
                ..Default::default()
            },
        ),
        (
            "I only (inner tent out)",
            TentConfig {
                inner_removed: true,
                ..Default::default()
            },
        ),
        (
            "B only (tarpaulin + door)",
            TentConfig {
                tarpaulin_removed: true,
                door_half_open: true,
                ..Default::default()
            },
        ),
        (
            "F only (fan)",
            TentConfig {
                fan: true,
                ..Default::default()
            },
        ),
        ("all four (paper final)", TentConfig::fully_modified()),
    ];
    let base = tent_week_mean(TentConfig::initial());
    let mut t = Table::new(
        "ablation 1 — tent interventions, applied alone (same cold week, 1 kW inside)",
        &["configuration", "mean tent °C", "Δ vs unmodified"],
    );
    Ensemble::new(cases.len() as u64).run_map(
        |i| tent_week_mean(cases[i as usize].1),
        |i, mean| {
            t.row(&[
                cases[i as usize].0.to_string(),
                format!("{mean:.1}"),
                format!("{:+.1} K", mean - base),
            ]);
        },
    );
    println!("{t}");
}

fn ablation_ecc() {
    println!("ablation 2 — ECC everywhere vs the paper's mixed fleet (scripted campaign)");
    Ensemble::new(2).run_experiments(
        |i| ExperimentConfig {
            force_ecc: i == 1,
            ..ExperimentConfig::paper_scripted(42)
        },
        |r| {
            let corrected: u64 = r.hosts.values().map(|h| h.silent_corruptions).sum();
            (r.workload.hash_errors().len(), corrected, r.stored_archives.len())
        },
        |i, (wrong, corrected, stored)| {
            let force_ecc = i == 1;
            println!(
                "  force_ecc={force_ecc:<5} wrong hashes: {wrong} | silent corruptions: {corrected} | stored archives: {stored}",
            );
        },
    );
    println!("  (ECC turns all five §4.2.2 incidents into corrected, logged events)\n");
}

fn ablation_fleet_scaling() {
    // Pure hazard-model study: simulate N hosts × one winter, many times,
    // and show how the Wilson interval around the true rate narrows.
    let mut t = Table::new(
        "ablation 3 — fleet size vs failure-rate precision (tent conditions, 90 days)",
        &["fleet size", "mean failed", "rate", "95% Wilson width"],
    );
    let injector = FaultInjector::new(&Rng::new(99));
    for fleet in [9u32, 18, 36, 72, 144] {
        let mut failed_total = 0u64;
        let trials = 30u32;
        for trial in 0..trials {
            for host in 0..fleet {
                let defective = host % 5 == 4; // 1-in-5 from the bad series
                let mut f = injector.host(HostId(trial * 1000 + host), defective);
                let mut failed = false;
                for _ in 0..(90 * 6) {
                    // 90 days in 4-hour steps, tent-ish conditions
                    let o = f.poll(4.0, 2.0, 70.0, 0);
                    if o.faults
                        .contains(&frostlab::faults::types::FaultKind::TransientSystemFailure)
                    {
                        failed = true;
                    }
                }
                failed_total += u64::from(failed);
            }
        }
        let n = u64::from(fleet) * u64::from(trials);
        let rate = failed_total as f64 / n as f64;
        // Interval width for a *single* campaign of this fleet size.
        let (lo, hi) = wilson_interval((rate * f64::from(fleet)).round() as u64, u64::from(fleet));
        t.row(&[
            fleet.to_string(),
            format!("{:.2}", rate * f64::from(fleet)),
            pct(rate),
            format!("{:.1} pp", 100.0 * (hi - lo)),
        ]);
    }
    println!("{t}");
    println!("reading: at the paper's n = 18, the failure-rate interval spans tens of");
    println!("percentage points — 'comparable to Intel' is the strongest defensible claim,");
    println!("exactly as the authors phrased it.");
}

fn main() {
    ablation_tent();
    ablation_ecc();
    ablation_fleet_scaling();
}
