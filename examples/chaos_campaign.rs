//! A stochastic campaign with the chaos engine switched on, reported
//! through the watchdog's incident ledger.
//!
//! This is the resilience story end to end: link-loss bursts, extra switch
//! deaths, host hangs and sensor freezes are overlaid on the hazard models;
//! the retrying collector chases every outage with backoff; and whatever
//! happened comes back as a machine-readable incident log plus the healed
//! collection gaps.
//!
//! ```sh
//! cargo run --release --example chaos_campaign [seed]
//! ```

use frostlab::core::{ExperimentConfig, ScenarioBuilder};
use frostlab::netsim::collector::AttemptKind;

fn main() {
    let seed = match std::env::args().nth(1) {
        None => 42,
        Some(s) => s.parse::<u64>().unwrap_or_else(|_| {
            eprintln!("usage: chaos_campaign [seed]  (seed must be a u64, got {s:?})");
            std::process::exit(2);
        }),
    };
    println!("chaos campaign — seed {seed}, §4.2.1-grade adversity overlaid\n");

    let results = ScenarioBuilder::paper(ExperimentConfig::paper_chaos(seed))
        .build()
        .run();

    let scheduled = results
        .collection
        .iter()
        .filter(|r| r.kind == AttemptKind::Scheduled)
        .count();
    let retries = results
        .collection
        .iter()
        .filter(|r| r.kind == AttemptKind::Retry)
        .count();
    println!(
        "collection: {scheduled} scheduled rounds ({:.2} % available), {retries} catch-up retries",
        100.0 * results.collection_availability()
    );

    println!("\nhealed collection gaps (worst five):");
    let mut gaps = results.collection_gaps.clone();
    gaps.sort_by_key(|g| std::cmp::Reverse(g.duration()));
    for g in gaps.iter().take(5) {
        println!(
            "  host {:>2}: stale {:>5.1} h, {} failed attempts, healed {}",
            g.host,
            g.duration().as_secs() as f64 / 3600.0,
            g.failed_attempts,
            g.end.datetime()
        );
    }

    println!("\nincident ledger ({} incidents):", results.incidents.len());
    for i in &results.incidents {
        let end = match i.resolved {
            Some(t) => format!(
                "resolved {} ({})",
                t.datetime(),
                i.resolution.as_deref().unwrap_or("-")
            ),
            None => "still open at campaign end".to_string(),
        };
        println!(
            "  [{}] {} opened {} — {end}",
            i.kind.name(),
            i.subject,
            i.started.datetime()
        );
    }

    println!("\nmachine-readable incident log:");
    match results.incident_log_json() {
        Ok(json) => println!("{json}"),
        Err(e) => eprintln!("serialization failed: {e}"),
    }
}
