//! The monitoring pipeline over the simulated switch fabric, end to end.
//!
//! This example wires the netsim layers together explicitly — the two
//! daisy-chained 8-port switches, the mini reliable transport, the toy
//! ssh-ish handshake and the rsync delta sync — and then kills a switch
//! mid-run, exactly like the whiny units in §4.2.1.
//!
//! ```sh
//! cargo run --release --example collection_network
//! ```

use bytes::Bytes;
use frostlab::netsim::auth::{handshake, Acceptor, HandshakeResult, KeyPair};
use frostlab::netsim::frame::MacAddr;
use frostlab::netsim::net::Network;
use frostlab::netsim::rsyncp;
use frostlab::netsim::transport::{drive_until_idle, Endpoint};
use frostlab::simkern::rng::Rng;
use frostlab::simkern::time::{SimDuration, SimTime};

fn main() {
    let mut rng = Rng::new(7);
    println!("collection network demo — two 8-port switches, nine tent hosts, one collector\n");

    // Topology: collector on switch 1, six hosts on switch 0, three on 1.
    let mut net = Network::new(&rng);
    net.loss_prob = 0.02; // frosty cabling
    let sw0 = net.add_switch();
    let sw1 = net.add_switch();
    net.link_switches(sw0, 7, sw1, 7).expect("free ports");
    let collector_mac = MacAddr::from_id(100);
    net.add_host(collector_mac);
    net.attach_host(collector_mac, sw1, 0).expect("free port");
    let host15 = MacAddr::from_id(15);
    net.add_host(host15);
    net.attach_host(host15, sw0, 0).expect("free port");

    // 1. SSH-ish handshake (protocol flow, not crypto).
    let client_key = KeyPair::generate(&mut rng);
    let mut acceptor = Acceptor::new(&mut rng, vec![client_key.public]);
    let verdict = handshake(&client_key, &mut acceptor);
    println!("auth handshake: {verdict:?}");
    assert_eq!(verdict, HandshakeResult::Accepted);

    // 2. rsync delta for an appended log.
    let old_log = b"2010-03-06 ok\n".repeat(400);
    let mut new_log = old_log.clone();
    new_log.extend_from_slice(b"2010-03-07 04:40 host15 WRONG HASH\n");
    let sig = rsyncp::signature(&old_log, 512);
    let delta = rsyncp::delta(&sig, &new_log);
    println!(
        "rsync: {} byte file, appended 35 bytes → {} literal bytes + {} copy tokens on the wire",
        new_log.len(),
        delta.literal_bytes(),
        delta.copy_count()
    );

    // 3. Ship the delta over the reliable transport, through both switches.
    let mut a = Endpoint::new(host15, collector_mac);
    let mut b = Endpoint::new(collector_mac, host15);
    // Serialize ops as one message each (framing kept simple for the demo).
    let mut shipped = 0usize;
    for op in &delta.ops {
        let payload = match op {
            rsyncp::DeltaOp::Copy { index } => Bytes::from(format!("C{index}")),
            rsyncp::DeltaOp::Literal(bytes) => {
                shipped += bytes.len();
                Bytes::from(bytes.clone())
            }
        };
        a.send(payload);
    }
    let done = drive_until_idle(
        &mut net,
        &mut a,
        &mut b,
        SimTime::ZERO,
        SimDuration::secs(2),
        SimTime::from_secs(3600),
    );
    println!(
        "transport: {} messages delivered in {} sim-seconds, {} retransmissions over the lossy fabric",
        b.take_delivered().len(),
        done.as_secs(),
        a.retransmissions
    );
    println!("literal payload shipped: {shipped} bytes\n");

    // 4. A switch dies (the whiny batch strikes).
    println!("killing switch 0 (the whiny unit)…");
    net.set_switch_up(sw0, false);
    let mut c = Endpoint::new(host15, collector_mac);
    let mut d = Endpoint::new(collector_mac, host15);
    c.send(Bytes::from_static(b"anyone there?"));
    drive_until_idle(
        &mut net,
        &mut c,
        &mut d,
        SimTime::from_secs(4000),
        SimDuration::secs(2),
        SimTime::from_secs(4000 + 60),
    );
    let got = d.take_delivered().len();
    println!(
        "collection through dead switch: {got} messages arrived, {} retransmissions burned — the round is recorded Unreachable",
        c.retransmissions
    );
    assert_eq!(got, 0);
    let stats = net.stats();
    println!(
        "\nfabric stats: {} delivered, {} dropped by dead switch, {} lost on links, {} floods",
        stats.delivered, stats.dropped_switch_down, stats.dropped_loss, stats.flooded
    );
}
