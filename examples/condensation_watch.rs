//! The §5 condensation question, answered quantitatively.
//!
//! "A central question concerns whether water can condense in the hardware
//! … Our current knowledge is that water has few possibilities to condense
//! in the equipment, as this would require the outside air to suddenly
//! become warmer than the computer cases."
//!
//! This example scans a simulated winter minute-by-minute and tracks the
//! dew-point margin for (a) a powered server case in the tent and (b) a
//! powered-off (cold-soaked) chassis — the dangerous scenario the authors
//! identify. It reports the worst margins and any actual condensation
//! events.
//!
//! ```sh
//! cargo run --release --example condensation_watch [seed]
//! ```

use frostlab::climate::presets;
use frostlab::climate::psychro::condensation_risk;
use frostlab::climate::weather::WeatherModel;
use frostlab::simkern::time::{SimDuration, SimTime};
use frostlab::thermal::enclosure::Enclosure;
use frostlab::thermal::server_case::{ServerCaseThermal, ServerThermalParams};
use frostlab::thermal::tent::{Tent, TentConfig, TentParams};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    println!("condensation watch — Feb 19 … May 13, seed {seed}\n");

    let mut wx = WeatherModel::new(presets::helsinki_winter_2010(), seed);
    let start = SimTime::from_date(2010, 2, 19);
    let end = SimTime::from_date(2010, 5, 13);
    let first = wx.sample_at(start);
    let mut tent = Tent::new(TentParams::default(), TentConfig::fully_modified(), &first);
    let mut powered = ServerCaseThermal::new(ServerThermalParams::vendor_a_tower(), first.temp_c);
    // The dead chassis: no fans (natural convection only, ~2 W/K) and the
    // full metal mass (~20 kJ/K) ⇒ a multi-hour lag behind the air — this
    // is what makes a cold-soaked machine dangerous when a warm front hits.
    let mut dead = ServerCaseThermal::new(
        ServerThermalParams {
            case_airflow_w_k: 2.0,
            case_capacity_j_k: 20_000.0,
            ..ServerThermalParams::vendor_a_tower()
        },
        first.temp_c,
    );

    let mut worst_powered = f64::INFINITY;
    let mut worst_dead = f64::INFINITY;
    let mut powered_events = 0u32;
    let mut dead_events = 0u32;
    let mut dead_event_example: Option<(SimTime, f64)> = None;
    let mut t = start;
    while t <= end {
        let w = wx.sample_at(t);
        tent.step(60.0, &w, 1000.0);
        let air = tent.state();
        powered.step(60.0, air.air_temp_c, 18.0, 85.0);
        dead.step(60.0, air.air_temp_c, 0.0, 0.0);

        let rp = condensation_risk(air.air_temp_c, air.air_rh_pct, powered.case_temp_c());
        let rd = condensation_risk(air.air_temp_c, air.air_rh_pct, dead.case_temp_c());
        worst_powered = worst_powered.min(rp.margin_k);
        worst_dead = worst_dead.min(rd.margin_k);
        if rp.condenses {
            powered_events += 1;
        }
        if rd.condenses {
            dead_events += 1;
            if dead_event_example.is_none() {
                dead_event_example = Some((t, rd.margin_k));
            }
        }
        t += SimDuration::minutes(1);
    }

    println!("powered case (85 W):");
    println!("  worst dew-point margin : {worst_powered:+.1} K");
    println!("  condensation minutes   : {powered_events}");
    println!("\npowered-off chassis (cold-soaked):");
    println!("  worst dew-point margin : {worst_dead:+.1} K");
    println!("  condensation minutes   : {dead_events}");
    if let Some((at, margin)) = dead_event_example {
        println!(
            "  first event            : {} (margin {margin:+.1} K)",
            at.datetime()
        );
    }

    println!("\nreading: the paper's reasoning holds — internal power keeps a running");
    println!("case above the dew point the whole winter. The risk concentrates on");
    println!("*dead* hardware when warm, humid fronts arrive (spring), which is when a");
    println!("failed machine should be taken indoors rather than left in the tent.");
}
