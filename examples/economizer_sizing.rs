//! Economizer sizing study: the §5 discussion as a planning tool.
//!
//! The department was installing 75 kW of cluster with a mechanical plant
//! adding up to PUE 1.74. This example asks the question the paper's
//! conclusion implies: what would the same load cost under free-air
//! cooling, per climate, per supply-air policy?
//!
//! ```sh
//! cargo run --release --example economizer_sizing
//! ```

use frostlab::analysis::report::{pct, Table};
use frostlab::climate::presets;
use frostlab::energy::economizer::{simulate_year, EconomizerConfig};
use frostlab::energy::plant::CoolingPlant;
use frostlab::energy::pue::{naive_plant_pue, pue_with_legacy};

const IT_KW: f64 = 75.0;
const HOURS: f64 = 8760.0;
const EUR_PER_KWH: f64 = 0.08; // 2010-ish Finnish industrial tariff

fn main() {
    println!("economizer sizing — the department's 75 kW cluster, re-costed\n");

    let plant = CoolingPlant::department_retrofit();
    println!(
        "mechanical plant: {:.1} kW overhead → naive PUE {:.2}, with legacy share {:.2}",
        plant.total_overhead_kw(),
        naive_plant_pue(IT_KW, &plant),
        pue_with_legacy(IT_KW, &plant, 0.25, 0.5)
    );
    let mech_cooling_kwh = plant.total_overhead_kw() * HOURS;
    println!(
        "mechanical cooling energy: {:.0} MWh/yr (≈ {:.0} k€/yr)\n",
        mech_cooling_kwh / 1000.0,
        mech_cooling_kwh * EUR_PER_KWH / 1000.0
    );

    let mut t = Table::new(
        "free-air cooling for 75 kW IT, by climate and supply-air limit",
        &[
            "climate",
            "limit °C",
            "free %",
            "savings",
            "PUE",
            "cooling MWh/yr",
            "k€/yr saved",
        ],
    );
    for climate in [
        presets::helsinki_winter_2010(),
        presets::north_east_england(),
        presets::new_mexico(),
    ] {
        for limit in [18.0, 24.0, 32.0] {
            let cfg = EconomizerConfig {
                supply_limit_c: limit,
                ..EconomizerConfig::default()
            };
            let r = simulate_year(climate.clone(), &cfg, 7);
            let cooling_mwh = r.econ_cooling_kwh_per_kw * IT_KW / 1000.0;
            let baseline_mwh = r.baseline_cooling_kwh_per_kw * IT_KW / 1000.0;
            t.row(&[
                r.climate.to_string(),
                format!("{limit:.0}"),
                pct(r.free_fraction()),
                pct(r.savings()),
                format!("{:.2}", r.effective_pue()),
                format!("{cooling_mwh:.0}"),
                format!(
                    "{:.0}",
                    (baseline_mwh - cooling_mwh) * 1000.0 * EUR_PER_KWH / 1000.0
                ),
            ]);
        }
    }
    println!("{t}");
    println!("paper context: Intel reported 67 % cooling-energy savings in New Mexico,");
    println!("HP ~40 % at Wynyard; the tent experiment argues the technique extends to");
    println!("Nordic climates, where the free-cooling fraction is even higher.");
}
