//! The §4.2.2 forensic chain, end to end.
//!
//! A host's synthetic run produces a wrong md5sum; the tarball is kept; we
//! run the `bzip2recover` equivalent over it, find that exactly one of the
//! ~396 compression blocks is damaged, check the drives' S.M.A.R.T. long
//! tests (clean), and conclude — like the authors — that a non-ECC memory
//! bit flip is the culprit, at a rate we then estimate.
//!
//! ```sh
//! cargo run --release --example fault_forensics
//! ```

use frostlab::analysis::memory_est::{estimate, ExposureInputs};
use frostlab::analysis::report::one_in;
use frostlab::compress::recover::recover;
use frostlab::hardware::disk::SelfTestResult;
use frostlab::hardware::server::{Server, ServerSpec};
use frostlab::simkern::rng::Rng;
use frostlab::workload::job::{JobConfig, JobRunner};

fn main() {
    println!("fault forensics — reproducing the paper's §4.2.2 chain\n");

    // A vendor-A host (non-ECC memory) runs its pack-verify cycle.
    let rng = Rng::new(2010);
    let mut job = JobRunner::new(JobConfig::default(), &rng);
    println!("golden md5 (computed at install): {}", job.golden_hash());
    println!(
        "archive: {} bytes, {} compression blocks\n",
        job.compressed_len(),
        job.block_count()
    );

    // Months pass; one run gets hit by a memory bit flip.
    let clean = job.run(0);
    assert!(clean.hash_ok);
    println!(
        "clean run    : md5 {} — matches, tarball overwritten",
        clean.hash
    );

    let corrupted = job.run(1);
    assert!(!corrupted.hash_ok);
    println!(
        "faulted run  : md5 {} — MISMATCH, tarball stored\n",
        corrupted.hash
    );

    // bzip2recover-style salvage.
    let archive = corrupted
        .stored_archive
        .expect("mismatch stores the archive");
    let report = recover(&archive);
    println!(
        "recover: {} blocks scanned, {} corrupted {:?}",
        report.total_blocks(),
        report.corrupted_count(),
        report.corrupted_indices()
    );
    println!(
        "salvaged {} of {} bytes ({:.1} %)\n",
        report.salvaged.len(),
        archive.len(),
        100.0 * report.salvaged.len() as f64 / archive.len() as f64
    );

    // Rule out the disks, like the paper did.
    let mut server = Server::new(ServerSpec::vendor_a());
    server.tick(2000.0, -5.0); // months of cold operation
    let mut all_pass = true;
    server.storage.for_each_disk_mut(|d| {
        all_pass &= d.long_self_test() == SelfTestResult::Passed;
    });
    println!(
        "S.M.A.R.T. long tests: {}",
        if all_pass {
            "all drives PASS — storage exonerated"
        } else {
            "failures found"
        }
    );
    println!("file system / kernel errors: none reported\n");

    // The conjecture and the estimate.
    println!("conjecture: single bit flip in non-ECC DRAM during packing");
    let est = estimate(&ExposureInputs::paper_ballpark(), 6);
    println!(
        "exposure estimate: {:.2e} page ops → fault ratio {}",
        est.page_ops as f64,
        one_in(est.ops_per_fault)
    );
    println!("(paper: ballpark 3.2 billion page ops, one in 570 million)");
}
