//! Scaling the fleet: the same campaign physics from 19 hosts to 10,000.
//!
//! ```sh
//! cargo run --release --example fleet_scale
//! ```
//!
//! The paper ran 19 machines. The struct-of-arrays fleet engine runs the
//! identical per-host models over generated vendor-mix fleets of any
//! size: hot per-host state lives in flat columns stepped in one pass per
//! tick, hosts spread over enclosure zones of nine (each zone its own
//! tent or basement room sharing the RC thermal network), and every
//! host's randomness derives from the label `host/{id}` so growing the
//! fleet appends streams without reshuffling existing ones.
//!
//! This example times a one-day stochastic campaign at three fleet sizes
//! and prints per-fleet summaries — the informal companion to
//! `bench_report`'s `hosts_scaling` section.

use std::time::Instant;

use frostlab::core::config::{ExperimentConfig, FaultMode};
use frostlab::core::fleet::FleetSpec;
use frostlab::core::ScenarioBuilder;

fn main() {
    println!("frostlab fleet scaling — one simulated day per fleet size\n");
    println!(
        "{:>7}  {:>9}  {:>9}  {:>11}  {:>9}  {:>11}",
        "hosts", "wall ms", "runs", "runs/host", "failures", "ticks/sec"
    );

    for &hosts in &[0u32, 1_000, 10_000] {
        let fleet = match hosts {
            0 => FleetSpec::Paper,
            n => FleetSpec::VendorMix { hosts: n },
        };
        let cfg = ExperimentConfig {
            fault_mode: FaultMode::Stochastic,
            fleet,
            ..ExperimentConfig::short(42, 1)
        };
        let ticks = (cfg.duration().as_secs() / cfg.tick.as_secs()) as f64;
        let label = if hosts == 0 { 19 } else { hosts };

        let t0 = Instant::now();
        let results = ScenarioBuilder::paper(cfg).build().run();
        let wall = t0.elapsed();

        let runs = results.workload.total_runs();
        let failures: usize = results.hosts.values().map(|h| h.failures.len()).sum();
        println!(
            "{:>7}  {:>9.0}  {:>9}  {:>11.1}  {:>9}  {:>11.0}",
            label,
            wall.as_secs_f64() * 1e3,
            runs,
            runs as f64 / f64::from(label),
            failures,
            ticks / wall.as_secs_f64()
        );
    }

    println!(
        "\nHost #3's fault train and job stream are identical in every row:\n\
         per-host randomness derives from `host/{{id}}`, so a bigger fleet\n\
         appends new streams instead of reshuffling the old ones."
    );
}
