//! Monte-Carlo failure study: what the paper could not do.
//!
//! The real experiment ran once. In stochastic mode we can re-run the
//! winter hundreds of times with faults drawn from the hazard models and
//! ask: what's the *distribution* of the fleet failure rate? How often does
//! a campaign look as benign as the one the authors happened to observe
//! (one failing host)? Campaigns run in parallel across cores on the
//! deterministic ensemble engine — the report below is byte-identical for
//! any worker count, because summaries merge in seed order regardless of
//! completion order.
//!
//! ```sh
//! cargo run --release --example monte_carlo_failures [n_campaigns] [threads]
//! ```

use frostlab::core::ExperimentConfig;
use frostlab::ensemble::report::monte_carlo_report;

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    let threads: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0); // 0 = all cores
    println!("monte-carlo failure study — {n} stochastic campaigns\n");

    print!(
        "{}",
        monte_carlo_report(n, threads, ExperimentConfig::paper_stochastic)
    );

    println!("\nreading: the paper's single observed winter (1 tent failure, clean control)");
    println!("is an unremarkable draw from the modeled hazards. Note the model's twist on");
    println!("the paper's second research question: tent CPUs run 20–30 K *cooler* than");
    println!("their basement twins, and the heated tent air is dry, so outside operation");
    println!("comes out slightly SAFER than the control room — free-air cooling does not");
    println!("raise the failure rate, which is the paper's thesis. Wrong-hash");
    println!("counts scale with exposure: the paper saw 5 in its 27 627-run snapshot");
    println!("(≈3.2e9 page ops); a full simulated campaign runs ~7× the exposure and the");
    println!("1-in-570-million rate predicts ~30 — which is what the stochastic mode draws.");
}
