//! Monte-Carlo failure study: what the paper could not do.
//!
//! The real experiment ran once. In stochastic mode we can re-run the
//! winter hundreds of times with faults drawn from the hazard models and
//! ask: what's the *distribution* of the fleet failure rate? How often does
//! a campaign look as benign as the one the authors happened to observe
//! (one failing host)? Campaigns run in parallel across cores (crossbeam
//! scoped threads).
//!
//! ```sh
//! cargo run --release --example monte_carlo_failures [n_campaigns]
//! ```

use std::sync::Mutex;

use frostlab::analysis::report::{pct, Table};
use frostlab::analysis::stats::wilson_interval;
use frostlab::core::{Experiment, ExperimentConfig};

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    println!("monte-carlo failure study — {n} stochastic campaigns\n");

    let results = Mutex::new(Vec::new());
    let next = std::sync::atomic::AtomicU64::new(0);
    let workers = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);

    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let seed = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                if seed >= n {
                    break;
                }
                let r = Experiment::new(ExperimentConfig::paper_stochastic(seed)).run();
                let cmp = r.failure_comparison();
                results.lock().expect("no poisoned locks").push((
                    seed,
                    cmp.outside.failed_hosts,
                    cmp.control.failed_hosts,
                    r.workload.hash_errors().len() as u64,
                    r.workload.total_runs(),
                ));
            });
        }
    })
    .expect("worker panicked");

    let mut rows = results.into_inner().expect("scope joined");
    rows.sort_by_key(|r| r.0);

    let campaigns = rows.len() as f64;
    let mean_tent_failed: f64 = rows.iter().map(|r| r.1 as f64).sum::<f64>() / campaigns;
    let mean_control_failed: f64 = rows.iter().map(|r| r.2 as f64).sum::<f64>() / campaigns;
    let mean_hash_errors: f64 = rows.iter().map(|r| r.3 as f64).sum::<f64>() / campaigns;
    let like_paper = rows.iter().filter(|r| r.1 <= 1 && r.2 == 0).count();
    let any_tent_failure = rows.iter().filter(|r| r.1 > 0).count();

    let mut t = Table::new("stochastic-winter outcomes", &["metric", "value"]);
    t.row(&["campaigns".into(), rows.len().to_string()]);
    t.row(&["mean failed hosts (tent, of 9)".into(), format!("{mean_tent_failed:.2}")]);
    t.row(&["mean failed hosts (control, of 9)".into(), format!("{mean_control_failed:.2}")]);
    t.row(&["mean wrong hashes per campaign".into(), format!("{mean_hash_errors:.2}")]);
    t.row(&[
        "campaigns ≤ 1 tent failure, clean control (like the paper)".into(),
        format!(
            "{} ({})",
            like_paper,
            pct(like_paper as f64 / campaigns)
        ),
    ]);
    t.row(&[
        "campaigns with ≥ 1 tent failure".into(),
        format!("{} ({})", any_tent_failure, pct(any_tent_failure as f64 / campaigns)),
    ]);
    let (lo, hi) = wilson_interval(any_tent_failure as u64, rows.len() as u64);
    t.row(&[
        "P(tent failure) 95 % Wilson".into(),
        format!("[{}, {}]", pct(lo), pct(hi)),
    ]);
    println!("{t}");

    println!("per-campaign detail (first 10):");
    for (seed, tent, control, hashes, runs) in rows.iter().take(10) {
        println!(
            "  seed {seed:>3}: tent hosts failed {tent}, control {control}, wrong hashes {hashes}, runs {runs}"
        );
    }
    println!("\nreading: the paper's single observed winter (1 tent failure, clean control)");
    println!("is an unremarkable draw from the modeled hazards. Note the model's twist on");
    println!("the paper's second research question: tent CPUs run 20–30 K *cooler* than");
    println!("their basement twins, and the heated tent air is dry, so outside operation");
    println!("comes out slightly SAFER than the control room — free-air cooling does not");
    println!("raise the failure rate, which is the paper's thesis. Wrong-hash");
    println!("counts scale with exposure: the paper saw 5 in its 27 627-run snapshot");
    println!("(≈3.2e9 page ops); a full simulated campaign runs ~7× the exposure and the");
    println!("1-in-570-million rate predicts ~30 — which is what the stochastic mode draws.");
}
