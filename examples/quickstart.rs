//! Quickstart: re-run the paper's campaign and print the headline results.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use frostlab::core::tables;
use frostlab::core::{ExperimentConfig, ScenarioBuilder};

fn main() {
    println!("frostlab quickstart — Running Servers around Zero Degrees (GreenNetworking 2010)\n");
    println!("Simulating the scripted campaign (Feb 12 – May 13, 2010)…\n");

    let results = ScenarioBuilder::paper(ExperimentConfig::paper_scripted(42))
        .build()
        .run();

    println!(
        "synthetic-load runs : {} (paper reported 27 627 at writing time,\n\
         \u{20}                     ~2 weeks after the last install; the full\n\
         \u{20}                     three-month campaign executes far more)",
        results.workload.total_runs()
    );
    println!(
        "wrong md5sums       : {} (paper: 5)",
        results.workload.hash_errors().len()
    );
    let cmp = results.failure_comparison();
    println!(
        "fleet failure rate  : {:.1} % (paper: 5.6 %, Intel PoC: 4.46 %)",
        100.0 * cmp.fleet().rate
    );
    println!(
        "lowest CPU reading  : {:.1} °C (paper: −4 °C)",
        results.fleet_min_cpu_c()
    );
    println!(
        "outside minimum     : {:.1} °C (paper: −22 °C during the season)",
        results
            .outside
            .iter()
            .map(|o| o.temp_c)
            .fold(f64::INFINITY, f64::min)
    );
    println!(
        "collection uptime   : {:.1} % of 20-minute rounds (switch deaths cost the rest)",
        100.0 * results.collection_availability()
    );
    println!(
        "tent group energy   : {:.0} kWh metered ({:.0} kWh true)",
        results.tent_energy_metered_kwh, results.tent_energy_true_kwh
    );

    println!("\n{}", tables::t1_failures(&results));
    println!("{}", tables::t2_hashes(&results));
}
