//! Composing what-if scenarios from pipeline phases — no forked
//! orchestrator required.
//!
//! Three compositions over the same 10-day window:
//!
//! 1. the stock paper pipeline (the reference);
//! 2. `replace("weather", …)` — the §4.1 cold snap never relents: a
//!    custom phase pins the outside air at −22 °C for the whole window;
//! 3. `insert_after("enclosure-thermal", …)` — a custom observer phase
//!    counts how long the tent spends below freezing, and
//!    `wrap`/`with_timing` meter where the wall-clock goes.
//!
//! ```sh
//! cargo run --release --example scenario_compose [seed]
//! ```

use frostlab::climate::weather::WeatherSample;
use frostlab::core::config::ExperimentConfig;
use frostlab::core::phases::{TickPhase, TimingProbe};
use frostlab::core::{CampaignCtx, ScenarioBuilder};

/// A weather phase that holds the outside air at a fixed deep-cold sample
/// instead of advancing the synthetic winter — the "what if the −22 °C
/// snap lasted the whole campaign" study. No station observations are
/// produced; the tent physics read [`CampaignCtx::weather`] directly.
struct PermanentColdSnap {
    temp_c: f64,
}

impl TickPhase for PermanentColdSnap {
    fn name(&self) -> &str {
        "weather"
    }

    fn step(&mut self, ctx: &mut CampaignCtx) {
        ctx.weather = WeatherSample {
            t: ctx.now,
            temp_c: self.temp_c,
            rh_pct: 85.0,
            wind_ms: 5.0,
            solar_w_m2: 0.0,
            cloud: 1.0,
        };
    }
}

/// An observer phase: counts ticks the tent air spends below 0 °C.
/// Inserted after `enclosure-thermal` so it sees the state of the current
/// tick.
struct FreezingTicks {
    below_zero: u64,
    total: u64,
}

impl TickPhase for FreezingTicks {
    fn name(&self) -> &str {
        "freezing-ticks"
    }

    fn step(&mut self, ctx: &mut CampaignCtx) {
        self.total += 1;
        if ctx.tent_state.air_temp_c < 0.0 {
            self.below_zero += 1;
        }
    }
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let cfg = || ExperimentConfig::short(seed, 10);

    println!("scenario composition — seed {seed}, 10-day window\n");

    // 1. The stock paper pipeline.
    let reference = ScenarioBuilder::paper(cfg()).build().run();
    println!(
        "stock pipeline     : tent mean {:>6.2} °C, min {:>6.2} °C, {} runs",
        reference.tent_temp_truth.mean().unwrap_or(f64::NAN),
        reference.tent_temp_truth.min().unwrap_or(f64::NAN),
        reference.workload.total_runs()
    );

    // 2. Swap the weather phase: the cold snap never ends.
    let frozen = ScenarioBuilder::paper(cfg())
        .replace("weather", Box::new(PermanentColdSnap { temp_c: -22.0 }))
        .build()
        .run();
    println!(
        "permanent −22 °C   : tent mean {:>6.2} °C, min {:>6.2} °C, {} runs",
        frozen.tent_temp_truth.mean().unwrap_or(f64::NAN),
        frozen.tent_temp_truth.min().unwrap_or(f64::NAN),
        frozen.workload.total_runs()
    );

    // 3. Observe and meter: an inserted observer phase plus per-phase
    // wall-clock probes over the whole pipeline.
    let (timed, timings) = ScenarioBuilder::paper(cfg())
        .insert_after(
            "enclosure-thermal",
            Box::new(TimingProbe::new(Box::new(FreezingTicks {
                below_zero: 0,
                total: 0,
            }))),
        )
        .with_timing()
        .build()
        .run_with_timings();
    // (The observer's counters live inside the pipeline; its tick count
    // comes back through the timing probe wrapped around it.)
    let observer = timings
        .iter()
        .find(|t| t.phase == "freezing-ticks")
        .expect("observer phase metered");
    println!(
        "observer pipeline  : tent mean {:>6.2} °C over {} observed ticks\n",
        timed.tent_temp_truth.mean().unwrap_or(f64::NAN),
        observer.calls
    );

    println!("per-phase wall-clock (10 simulated days):");
    for t in &timings {
        println!(
            "  {:>18}: {:>8.1} ms  ({} calls)",
            t.phase, t.total_ms, t.calls
        );
    }
}
