//! The paper's future work, §5/§6: "As the spring is now approaching,
//! conditions are likely to shift rapidly. It is certainly still possible
//! that within the next months of operation, some components may start to
//! regularly fail." — so: run the continuation the authors never published.
//!
//! This example extends the campaign through a full Helsinki summer in
//! stochastic mode, compares failure intensities by season (Arrhenius says
//! summer should be *worse* than winter for the tent group), summarizes a
//! Kaplan–Meier survival view, and compares wet-side vs air-side economizer
//! feasibility across the year.
//!
//! ```sh
//! cargo run --release --example summer_outlook [campaigns]
//! ```

use frostlab::analysis::report::Table;
use frostlab::analysis::survival::{kaplan_meier, mtbf_hours, survival_at, Observation};
use frostlab::climate::presets;
use frostlab::core::config::{ExperimentConfig, FaultMode};
use frostlab::core::ScenarioBuilder;
use frostlab::energy::economizer::{simulate_year, EconomizerConfig};
use frostlab::energy::wetside::{simulate_year_wetside, WetSideConfig};
use frostlab::faults::types::FaultKind;
use frostlab::simkern::time::SimTime;
use frostlab::workload::stats::Placement;

fn main() {
    let campaigns: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    println!(
        "summer outlook — extending the campaign through August, {campaigns} stochastic runs\n"
    );

    let mut winter_hangs = 0usize; // Feb 19 – May 13 (the paper's window)
    let mut summer_hangs = 0usize; // May 13 – Aug 31 (the continuation)
    let mut observations: Vec<Observation> = Vec::new();
    let boundary = SimTime::from_date(2010, 5, 13);
    let summer_end = SimTime::from_date(2010, 8, 31);

    for seed in 0..campaigns {
        let cfg = ExperimentConfig {
            fault_mode: FaultMode::Stochastic,
            end: summer_end,
            ..ExperimentConfig::paper_stochastic(seed)
        };
        let r = ScenarioBuilder::paper(cfg).build().run();
        for ev in &r.fault_events {
            if ev.kind == FaultKind::TransientSystemFailure {
                if ev.at < boundary {
                    winter_hangs += 1;
                } else {
                    summer_hangs += 1;
                }
            }
        }
        // Survival observations: tent hosts, time-to-first-failure.
        for h in r.hosts.values().filter(|h| h.placement == Placement::Tent) {
            let start = h.installed_at;
            match h.failures.first() {
                Some(&f) => observations.push(Observation {
                    hours: (f - start).as_hours_f64().max(0.1),
                    failed: true,
                }),
                None => observations.push(Observation {
                    hours: (summer_end - start).as_hours_f64(),
                    failed: false,
                }),
            }
        }
    }

    let winter_days = 83.0;
    let summer_days = 110.0;
    let mut t = Table::new(
        "transient failures by season (tent + control, all campaigns)",
        &["season", "hangs", "hangs / fleet-month"],
    );
    let per_month = |hangs: usize, days: f64| hangs as f64 / (campaigns as f64 * days / 30.44);
    t.row(&[
        "winter+spring (Feb 19 – May 13)".into(),
        winter_hangs.to_string(),
        format!("{:.2}", per_month(winter_hangs, winter_days)),
    ]);
    t.row(&[
        "summer (May 13 – Aug 31)".into(),
        summer_hangs.to_string(),
        format!("{:.2}", per_month(summer_hangs, summer_days)),
    ]);
    println!("{t}");

    let curve = kaplan_meier(&observations);
    println!(
        "tent-host survival (Kaplan–Meier over {} machine-histories):",
        observations.len()
    );
    for hours in [500.0, 1500.0, 3000.0, 4500.0] {
        println!("  S({:>4.0} h) = {:.3}", hours, survival_at(&curve, hours));
    }
    match mtbf_hours(&observations) {
        Some(mtbf) => println!("  crude MTBF: {mtbf:.0} machine-hours\n"),
        None => println!("  no failures observed\n"),
    }

    // Economizer feasibility across the whole year, both technologies.
    let mut t = Table::new(
        "economizer feasibility, full year in Helsinki",
        &["technology", "free-cooling %", "savings vs mechanical"],
    );
    let air = simulate_year(
        presets::helsinki_winter_2010(),
        &EconomizerConfig::default(),
        3,
    );
    let wet = simulate_year_wetside(
        presets::helsinki_winter_2010(),
        &WetSideConfig::default(),
        3,
    );
    t.row(&[
        "air-side (the tent, scaled up)".into(),
        format!("{:.1} %", 100.0 * air.free_fraction()),
        format!("{:.1} %", 100.0 * air.savings()),
    ]);
    t.row(&[
        "wet-side (Intel's earlier preference)".into(),
        format!("{:.1} %", 100.0 * wet.free_fraction()),
        format!("{:.1} %", 100.0 * wet.savings()),
    ]);
    println!("{t}");
    println!("reading: in Helsinki the dry-bulb is cold enough that plain outside air");
    println!("covers most of the year — the tent's answer to Intel's wet-side argument.");
}
