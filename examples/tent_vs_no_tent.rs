//! Why the tent exists: precipitation exposure with and without shelter.
//!
//! §3.1–3.2 spend most of their words on rain/snow shielding — the plastic
//! boxes, then the tent, were *water* defenses, with airflow as the
//! competing constraint. This ablation runs the winter's precipitation over
//! (a) a machine in the tent, (b) a machine under a minimal "hardware-store
//! shed" roof (the authors' stated ideal), and (c) a bare machine on the
//! terrace, and converts water exposure into an ingress-failure risk.
//!
//! Ingress model for the bare machine: falling rain wets the internals
//! directly; falling snow lands on the warm case, melts, and wets them too
//! (the §3.1 worry, "melting into water"). Risk accumulates as
//! `1 − exp(−k · liquid_mm)`.
//!
//! ```sh
//! cargo run --release --example tent_vs_no_tent [seed]
//! ```

use frostlab::analysis::report::{pct, Table};
use frostlab::climate::precip::{PrecipModel, PrecipPhase};
use frostlab::climate::presets;
use frostlab::climate::weather::WeatherModel;
use frostlab::simkern::rng::Rng;
use frostlab::simkern::time::{SimDuration, SimTime};

/// Ingress-failure risk per mm of liquid water reaching the internals.
const K_PER_MM: f64 = 0.02;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    println!("tent vs no tent — precipitation exposure, Feb 12 … May 13, seed {seed}\n");

    let mut wx = WeatherModel::new(presets::helsinki_winter_2010(), seed);
    let mut pm = PrecipModel::new(&Rng::new(seed));
    let start = SimTime::from_date(2010, 2, 12);
    let end = SimTime::from_date(2010, 5, 13);

    let mut snow_mm = 0.0f64; // water equivalent falling as snow
    let mut rain_mm = 0.0f64;
    let mut wet_hours = 0.0f64;
    let mut t = start;
    let step = SimDuration::minutes(10);
    let dt_h = 10.0 / 60.0;
    while t <= end {
        let w = wx.sample_at(t);
        let p = pm.step(&w);
        match p.phase {
            PrecipPhase::Snow => {
                snow_mm += p.rate_mm_h * dt_h;
                wet_hours += dt_h;
            }
            PrecipPhase::Rain => {
                rain_mm += p.rate_mm_h * dt_h;
                wet_hours += dt_h;
            }
            PrecipPhase::None => {}
        }
        t += step;
    }

    println!("campaign precipitation on the terrace:");
    println!(
        "  snow  : {snow_mm:.0} mm water equivalent (≈ {:.0} cm fresh depth)",
        snow_mm
    );
    println!("  rain  : {rain_mm:.0} mm");
    println!("  hours with precipitation: {wet_hours:.0}\n");

    // Exposure per shelter option. A powered case melts every flake that
    // lands on it, so for the bare machine snow counts as liquid.
    let bare_liquid = snow_mm + rain_mm;
    // The shed roof stops fall but wind-driven rain/snow still grazes the
    // sides: ~5 % of totals.
    let shed_liquid = 0.05 * bare_liquid;
    // The tent: dry (that was the point). Wind-pumped spindrift through the
    // opened bottom after B is a token exposure.
    let tent_liquid = 0.01 * bare_liquid;

    let mut table = Table::new(
        "water ingress risk over the campaign",
        &["shelter", "liquid on internals", "P(ingress failure)"],
    );
    for (name, liquid) in [
        ("bare machine on the terrace", bare_liquid),
        ("hardware-store shed roof (authors' ideal)", shed_liquid),
        ("the tent", tent_liquid),
    ] {
        let p = 1.0 - (-K_PER_MM * liquid).exp();
        table.row(&[name.to_string(), format!("{liquid:.1} mm"), pct(p)]);
    }
    println!("{table}");
    println!("reading: without shielding the campaign is hopeless (risk → certainty);");
    println!("even a minimal roof removes almost all of it, which is why the authors call");
    println!("an open shed the ideal — the tent's remaining problem was never water, it");
    println!("was the heat retention the R/I/B/F modifications then had to fight.");
}
