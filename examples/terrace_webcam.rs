//! The Exactum terrace webcam (footnote 1 of the paper), simulated.
//!
//! Renders one day of hourly frames of the tent on the roof terrace —
//! weather, snowpack, tent temperature and the machines' "lights".
//!
//! ```sh
//! cargo run --release --example terrace_webcam [seed] [yyyy-mm-dd]
//! ```

use frostlab::climate::precip::{PrecipModel, PrecipPhase};
use frostlab::climate::presets;
use frostlab::climate::weather::WeatherModel;
use frostlab::simkern::rng::Rng;
use frostlab::simkern::time::{SimDuration, SimTime};
use frostlab::telemetry::webcam::{render_frame, SceneState};
use frostlab::thermal::enclosure::Enclosure;
use frostlab::thermal::tent::{Tent, TentConfig, TentParams};

fn parse_date(s: &str) -> Option<SimTime> {
    let mut it = s.split('-');
    let y: i32 = it.next()?.parse().ok()?;
    let m: u32 = it.next()?.parse().ok()?;
    let d: u32 = it.next()?.parse().ok()?;
    Some(SimTime::from_date(y, m, d))
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let day = std::env::args()
        .nth(2)
        .and_then(|s| parse_date(&s))
        .unwrap_or_else(|| SimTime::from_date(2010, 3, 2));

    println!(
        "Exactum-kamera — simulated terrace, {} (seed {seed})\n",
        day.date()
    );

    // Spin everything up from Feb 12 so the snowpack and tent are in a
    // realistic state by the chosen day.
    let mut wx = WeatherModel::new(presets::helsinki_winter_2010(), seed);
    let mut precip = PrecipModel::new(&Rng::new(seed));
    let start = SimTime::from_date(2010, 2, 12);
    let first = wx.sample_at(start);
    let mut tent = Tent::new(TentParams::default(), TentConfig::initial(), &first);
    let mut t = start;
    while t < day {
        let w = wx.sample_at(t);
        precip.step(&w);
        tent.step(600.0, &w, 1000.0);
        t += SimDuration::minutes(10);
    }

    // The day itself: one frame per hour (every other printed, for width).
    for hour in (0..24).step_by(3) {
        let frame_t = day + SimDuration::hours(hour);
        while t <= frame_t {
            let w = wx.sample_at(t);
            precip.step(&w);
            tent.step(60.0, &w, 1000.0);
            t += SimDuration::minutes(1);
        }
        let w = wx.sample_at(t);
        let p = precip.step(&w);
        let scene = SceneState {
            t: frame_t,
            outside_c: w.temp_c,
            tent_c: tent.state().air_temp_c,
            wind_ms: w.wind_ms,
            solar_w_m2: w.solar_w_m2,
            precipitating: p.phase != PrecipPhase::None,
            snow_cm: precip.snowpack_mm_we() / 10.0 * 1.0, // ≈ cm settled snow
            machines_running: 9,
        };
        println!("{}", render_frame(&scene));
    }
}
