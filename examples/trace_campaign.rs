//! Trace a campaign and look inside it three ways.
//!
//! Arms the tracer on a short scripted campaign, then:
//!
//! 1. prints the headline metric values from the final snapshot;
//! 2. prints the first few sim-time span events as JSONL;
//! 3. writes `trace_perfetto.json` — drop it on <https://ui.perfetto.dev>
//!    (or `chrome://tracing`) to scrub through the campaign phase by
//!    phase, host by host, on the *simulated* clock.
//!
//! The tracer draws no randomness and reads no wall-clock, so running
//! this twice produces byte-identical files — and running it with the
//! tracer off produces byte-identical *results* to a traced run.
//!
//! ```sh
//! cargo run --release --example trace_campaign [seed]
//! ```

use frostlab::core::{ExperimentConfig, ScenarioBuilder};
use frostlab::trace::export::{to_chrome_trace, to_jsonl, to_prometheus};
use frostlab::trace::TraceConfig;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    let results = ScenarioBuilder::paper(ExperimentConfig::short(seed, 14))
        .with_tracing(TraceConfig::default())
        .build()
        .run();
    let trace = results
        .trace
        .as_ref()
        .expect("with_tracing arms the tracer");

    println!("== traced campaign, seed {seed}, 14 days ==");
    println!(
        "events recorded: {} (dropped: {})",
        trace.events.len(),
        trace.dropped_events
    );

    println!("\n== final metrics (Prometheus text) ==");
    print!("{}", to_prometheus(&trace.metrics));

    println!("== first span events (JSONL) ==");
    let jsonl = to_jsonl(trace).expect("trace serializes");
    for line in jsonl.lines().take(6) {
        println!("{line}");
    }
    println!("…");

    let perfetto = to_chrome_trace(trace).expect("trace serializes");
    std::fs::write("trace_perfetto.json", &perfetto).expect("write trace");
    println!(
        "\nwrote trace_perfetto.json ({} KiB) — open it at https://ui.perfetto.dev",
        perfetto.len() / 1024
    );
}
