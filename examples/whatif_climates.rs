//! "We have shown that Intel's results from New Mexico and HP's from North
//! East England can be extended to most parts of the globe" — so run the
//! whole tent experiment in those other climates and see.
//!
//! Same fleet, same tent, same workload; only the atmosphere changes. The
//! three campaigns fan out over the ensemble engine (one job per climate)
//! and the rows land in climate order whatever the scheduler does.
//!
//! ```sh
//! cargo run --release --example whatif_climates [seed]
//! ```

use frostlab::analysis::report::Table;
use frostlab::climate::presets;
use frostlab::climate::weather::ClimateParams;
use frostlab::core::config::{ExperimentConfig, FaultMode};
use frostlab::ensemble::Ensemble;
use frostlab::faults::types::FaultKind;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    println!("what-if climates — the tent experiment relocated, seed {seed}\n");

    let climates: [ClimateParams; 3] = [
        presets::helsinki_winter_2010(),
        presets::north_east_england(),
        presets::new_mexico(),
    ];

    let mut t = Table::new(
        "the same campaign (Feb 12 – May 13) in three climates, stochastic faults",
        &[
            "climate",
            "outside min/mean °C",
            "tent mean °C",
            "min CPU °C",
            "hangs",
            "wrong hashes",
            "energy kWh",
        ],
    );

    Ensemble::new(climates.len() as u64).run_experiments(
        |i| ExperimentConfig {
            climate: climates[i as usize].clone(),
            fault_mode: FaultMode::Stochastic,
            ..ExperimentConfig::paper_stochastic(seed)
        },
        |r| {
            let out_min = r
                .outside
                .iter()
                .map(|o| o.temp_c)
                .fold(f64::INFINITY, f64::min);
            let out_mean =
                r.outside.iter().map(|o| o.temp_c).sum::<f64>() / r.outside.len().max(1) as f64;
            let hangs = r
                .fault_events
                .iter()
                .filter(|e| e.kind == FaultKind::TransientSystemFailure)
                .count();
            [
                format!("{out_min:.0} / {out_mean:.0}"),
                format!("{:.1}", r.tent_temp_truth.mean().unwrap_or(f64::NAN)),
                format!("{:.1}", r.fleet_min_cpu_c()),
                hangs.to_string(),
                r.workload.hash_errors().len().to_string(),
                format!("{:.0}", r.tent_energy_true_kwh),
            ]
        },
        |i, cells| {
            let mut row = vec![climates[i as usize].name.to_string()];
            row.extend(cells);
            t.row(&row);
        },
    );
    println!("{t}");
    println!("reading: the campaign completes everywhere — the experiment's machinery");
    println!("(shelter, monitoring, verification) is climate-independent; what changes is");
    println!("the thermal margin. Finland is the *hard* case for cold tolerance and the");
    println!("easy case for free cooling; New Mexico flips both, exactly the paper's");
    println!("framing of Intel's site.");
}
