//! The full scripted campaign with the complete report — every table, the
//! figure summaries, the host-by-host outcome.
//!
//! ```sh
//! cargo run --release --example winter_campaign [seed]
//! ```

use frostlab::analysis::report::Table;
use frostlab::core::figures;
use frostlab::core::prototype::run_prototype;
use frostlab::core::tables;
use frostlab::core::{ExperimentConfig, ScenarioBuilder};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let cfg = ExperimentConfig::paper_scripted(seed);

    println!("winter campaign — scripted reproduction, seed {seed}\n");

    // Phase 1: the prototype weekend.
    let proto = run_prototype(&cfg);
    println!("{}", tables::t5_prototype(&proto));

    // Phase 2: the normal phase.
    println!("running the normal phase (Feb 19 – May 13)…\n");
    let results = ScenarioBuilder::paper(cfg).build().run();

    println!("{}", tables::t1_failures(&results));
    println!("{}", tables::t2_hashes(&results));
    println!("{}", tables::t3_memory(&results));
    println!("{}", tables::t4_pue());
    println!("{}", tables::t6_savings(seed));

    // Figure summaries (full CSVs come from the fig3/fig4 bench binaries).
    let f3 = figures::fig3_temperature(&results);
    println!("Fig. 3 summary: {}", f3.summary);
    println!(
        "  marks: {:?} | inside-channel gaps: {}",
        f3.marks
            .iter()
            .map(|(m, t)| format!("{m}@{}", t.date()))
            .collect::<Vec<_>>(),
        f3.inside_gaps.len()
    );
    let f4 = figures::fig4_humidity(&results);
    println!("Fig. 4 summary: {}\n", f4.summary);

    // Host-by-host outcome.
    let mut t = Table::new(
        "host outcomes",
        &[
            "host",
            "vendor",
            "group",
            "failures",
            "resets",
            "disposition",
            "min CPU °C",
        ],
    );
    for h in results.hosts.values() {
        t.row(&[
            format!(
                "#{:02}{}",
                h.id,
                if h.defective { " (defect series)" } else { "" }
            ),
            h.vendor.to_string(),
            h.placement.to_string(),
            h.failures.len().to_string(),
            h.resets.to_string(),
            format!("{:?}", h.disposition),
            if h.min_cpu_c.is_finite() {
                format!("{:.1}", h.min_cpu_c)
            } else {
                "—".to_string()
            },
        ]);
    }
    println!("{t}");
    println!(
        "collection availability: {:.1} % | tent energy: {:.0} kWh metered / {:.0} kWh true",
        100.0 * results.collection_availability(),
        results.tent_energy_metered_kwh,
        results.tent_energy_true_kwh
    );
}
