//! # frostlab
//!
//! A digital twin of **“Running Servers around Zero Degrees”** (Pervilä &
//! Kangasharju, ACM GreenNetworking 2010): the experiment that ran
//! commodity servers in a tent on a Helsinki roof terrace through Finnish
//! winter, cooled by nothing but outside air.
//!
//! The original study is a measurement campaign, so this crate family
//! rebuilds everything the campaign *used* — the winter, the tent, the
//! machines, the instruments, the monitoring network, the repair crew — as
//! deterministic simulation substrates, and then re-runs the campaign:
//!
//! | crate | what it models |
//! |---|---|
//! | [`simkern`] | event queue, simulation time, deterministic PRNG |
//! | [`climate`] | Helsinki winter 2010 (and the Intel/HP comparison climates) |
//! | [`thermal`] | the tent (R/I/B/F mods), the basement, server chassis |
//! | [`hardware`] | vendors A/B/C, sensors, non-ECC DIMMs, disks, RAID, switches |
//! | [`faults`] | Arrhenius/Peck/Coffin–Manson hazards, injection, repair policy |
//! | [`compress`] | tar, bzip2-style block compression, MD5, `bzip2recover` |
//! | [`workload`] | the 10-minute pack-verify load with 0–119 s jitter |
//! | [`netsim`] | frames, learning switches, mini reliable transport, rsync, ssh-ish auth |
//! | [`telemetry`] | Lascar logger, Technoline meter, outlier removal |
//! | [`energy`] | CRAC/HVAC plant, PUE, air-economizer comparison |
//! | [`analysis`] | Wilson intervals, exposure estimates, report tables |
//! | [`trace`] | deterministic sim-time tracing, metrics registry, Perfetto/JSONL/Prometheus export |
//! | [`obs`] | fleet health observatory: dimensional rollups, SLO burn-rate alerts, flight recorder |
//! | [`core`] | the orchestrated campaign (scripted + stochastic modes) |
//! | [`ensemble`] | deterministic parallel campaign sweeps with streaming aggregation |
//! | [`farm`] | crash-resumable durable job farm: WAL queue, result cache, supervised workers |
//! | [`service`] | `frostlabd`: scenario-serving HTTP API with content-hash caching and bounded admission |
//!
//! ## Quickstart
//!
//! ```no_run
//! use frostlab::core::{Experiment, ExperimentConfig};
//!
//! // Re-run the paper's campaign with its documented fault history.
//! let results = Experiment::new(ExperimentConfig::paper_scripted(42)).run();
//! assert_eq!(results.workload.hash_errors().len(), 5);
//! println!("fleet failure rate: {:.1} %", 100.0 * results.failure_comparison().fleet().rate);
//! ```
//!
//! See `examples/` for the campaign reproduction, the forensic pipeline,
//! the economizer sizing study and a Monte-Carlo failure sweep, and
//! `crates/bench` for one reproduction binary per figure/table in the
//! paper (run `cargo run -p frostlab-bench --bin repro_all --release`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use frostlab_analysis as analysis;
pub use frostlab_climate as climate;
pub use frostlab_compress as compress;
pub use frostlab_core as core;
pub use frostlab_energy as energy;
pub use frostlab_ensemble as ensemble;
pub use frostlab_farm as farm;
pub use frostlab_faults as faults;
pub use frostlab_hardware as hardware;
pub use frostlab_netsim as netsim;
pub use frostlab_obs as obs;
pub use frostlab_service as service;
pub use frostlab_simkern as simkern;
pub use frostlab_telemetry as telemetry;
pub use frostlab_thermal as thermal;
pub use frostlab_trace as trace;
pub use frostlab_workload as workload;
