//! Integration tests for the deterministic parallel ensemble engine:
//! thread-count invariance of real campaign sweeps, and the scheduling
//! bug the old Monte-Carlo example had (output order depending on which
//! worker finished first) staying fixed.

use frostlab::core::config::{ExperimentConfig, FaultMode};
use frostlab::core::ScenarioBuilder;
use frostlab::ensemble::report::monte_carlo_report;
use frostlab::ensemble::{run_summary_sweep, CampaignAggregate, Ensemble};

/// A cheap stochastic campaign for test sweeps: 2 simulated days.
fn short_stochastic(seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        fault_mode: FaultMode::Stochastic,
        ..ExperimentConfig::short(seed, 2)
    }
}

#[test]
fn summary_sweep_is_thread_count_invariant() {
    let serial = run_summary_sweep(0, 6, 1, short_stochastic);
    let parallel = run_summary_sweep(0, 6, 4, short_stochastic);
    assert_eq!(
        serial.invariant_json().unwrap(),
        parallel.invariant_json().unwrap(),
        "1-thread and 4-thread sweeps must serialize byte-identically"
    );
    assert_eq!(serial.campaigns, 6);
    // The executed thread counts (masked out of the invariant form) are
    // the only thing allowed to differ.
    assert_eq!(serial.threads_used, 1);
    assert_eq!(parallel.threads_used, 4);
}

#[test]
fn sweep_matches_hand_rolled_serial_loop() {
    let sweep = run_summary_sweep(3, 4, 2, short_stochastic);
    let mut agg = CampaignAggregate::new();
    for seed in 3..7 {
        agg.absorb(
            &ScenarioBuilder::paper(short_stochastic(seed))
                .build()
                .run()
                .summary(),
        );
    }
    assert_eq!(
        sweep.invariant_json().unwrap(),
        agg.finish(3, 2).invariant_json().unwrap()
    );
}

#[test]
fn monte_carlo_report_prints_identically_across_runs_and_threads() {
    // The pre-engine example pushed rows into a Mutex<Vec<_>> in
    // completion order; two runs could print different orderings. The
    // engine merges in seed order, so every render must be identical.
    let a = monte_carlo_report(5, 4, short_stochastic);
    let b = monte_carlo_report(5, 4, short_stochastic);
    let serial = monte_carlo_report(5, 1, short_stochastic);
    assert_eq!(a, b, "two parallel runs must print identically");
    assert_eq!(a, serial, "parallel and serial runs must print identically");
    assert!(a.contains("per-campaign detail"));
    // Detail rows appear in seed order.
    let positions: Vec<usize> = (0..5)
        .map(|s| a.find(&format!("seed   {s}:")).expect("row present"))
        .collect();
    assert!(
        positions.windows(2).all(|w| w[0] < w[1]),
        "rows sorted by seed"
    );
}

#[test]
fn experiment_sweep_reports_progress_in_order() {
    let seen = std::cell::RefCell::new(Vec::new());
    let mut seeds = Vec::new();
    Ensemble::new(4)
        .threads(2)
        .on_progress(|done, total| seen.borrow_mut().push((done, total)))
        .run_experiments(short_stochastic, |r| r.seed, |_, seed| seeds.push(seed));
    assert_eq!(
        seen.into_inner(),
        (1..=4).map(|d| (d, 4)).collect::<Vec<_>>()
    );
    assert_eq!(seeds, vec![0, 1, 2, 3]);
}
