//! Fleet-scale determinism gate.
//!
//! The struct-of-arrays fleet engine must produce the same bytes for a
//! generated 1,000-host campaign regardless of how many ensemble worker
//! threads ran it — and those bytes are pinned here so the vendor-mix
//! fleet generator, the zone layout, and the bulk host stepper cannot
//! drift silently. Recapture (own commit, with the reason) via:
//!
//! ```sh
//! GOLDEN_PRINT=1 cargo test --release --test fleet_scale -- --nocapture
//! ```

use frostlab::core::config::{ExperimentConfig, FaultMode};
use frostlab::core::fleet::FleetSpec;
use frostlab::core::ScenarioBuilder;
use frostlab::ensemble::run_summary_sweep;

/// FNV-1a 64-bit over the artifact bytes (same gate as `golden_hash`).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// Golden hash of a single 1,000-host, one-day stochastic campaign's
/// summary JSON at seed 42.
const KILOHOST_SUMMARY_GOLDEN: u64 = 0x40a96efb7dc2ec4e;

/// Golden hash of the 1,000-host ensemble invariant summary (2 seeds,
/// one day each) — identical at 1 and 4 threads.
const KILOHOST_ENSEMBLE_GOLDEN: u64 = 0xb38f13e9b3615230;

fn kilohost_config(seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        fault_mode: FaultMode::Stochastic,
        fleet: FleetSpec::VendorMix { hosts: 1_000 },
        ..ExperimentConfig::short(seed, 1)
    }
}

#[test]
fn kilohost_campaign_matches_golden() {
    let results = ScenarioBuilder::paper(kilohost_config(42)).build().run();
    assert_eq!(results.hosts.len(), 1_000, "fleet size");
    let summary = results.summary().to_json().expect("summary serializes");
    if std::env::var_os("GOLDEN_PRINT").is_some() {
        println!(
            "KILOHOST_SUMMARY_GOLDEN = {:#018x}",
            fnv1a(summary.as_bytes())
        );
        return;
    }
    assert_eq!(
        fnv1a(summary.as_bytes()),
        KILOHOST_SUMMARY_GOLDEN,
        "1,000-host campaign summary drifted:\n{}",
        &summary[..summary.len().min(400)]
    );
}

#[test]
fn kilohost_ensemble_is_thread_count_invariant() {
    let sweep = |threads| {
        run_summary_sweep(0, 2, threads, kilohost_config)
            .invariant_json()
            .expect("invariant summary serializes")
    };
    let t1 = sweep(1);
    let t4 = sweep(4);
    assert_eq!(t1, t4, "thread-count invariance violated at 1,000 hosts");
    if std::env::var_os("GOLDEN_PRINT").is_some() {
        println!("KILOHOST_ENSEMBLE_GOLDEN = {:#018x}", fnv1a(t1.as_bytes()));
        return;
    }
    assert_eq!(
        fnv1a(t1.as_bytes()),
        KILOHOST_ENSEMBLE_GOLDEN,
        "1,000-host ensemble invariant summary drifted:\n{t1}"
    );
}
