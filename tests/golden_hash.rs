//! Golden-hash determinism gate for the paper scenario.
//!
//! The phase-pipeline refactor (and any future reshuffling of the campaign
//! kernel) must keep the paper scenario **byte-identical**: every figure,
//! table and summary artifact hashed here was captured from the
//! pre-refactor monolithic orchestrator and must never drift. If a change
//! legitimately alters the outputs (a new physical model, a config
//! change), recapture with:
//!
//! ```sh
//! GOLDEN_PRINT=1 cargo test --release --test golden_hash -- --nocapture
//! ```
//!
//! and update the constants — in its own commit, with the reason.

use frostlab::core::config::{ExperimentConfig, FaultMode};
use frostlab::core::{figures, tables, ScenarioBuilder};
use frostlab::ensemble::run_summary_sweep;

/// FNV-1a 64-bit over the artifact bytes: stable, dependency-free, and
/// plenty to detect any byte-level drift.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// `(artifact name, golden FNV-1a hash)` captured from the pre-refactor
/// monolithic `Experiment::run` at seed 42.
const PAPER_GOLDEN: &[(&str, u64)] = &[
    ("t1_failures", 0x26d729ad6efcd424),
    ("t2_hashes", 0xa6903c344ff84b49),
    ("t3_memory", 0x09fef8574ce50302),
    ("fig2_render", 0x7fdea2307b720f2a),
    ("fig3_csv", 0x74508fe42e23a23a),
    ("fig3_summary", 0xb64f7b1cbabf4938),
    ("fig4_csv", 0xc4d7ea4ab894c60a),
    ("fig4_summary", 0x5757649f6cc34f04),
    ("summary_json", 0x530e6fadd626f22f),
    ("incident_log_json", 0xd5724a97f91eb2df),
];

/// Golden hash of the ensemble invariant summary (6 stochastic 5-day
/// campaigns, seeds 0..6) — identical at 1 and 4 threads.
const ENSEMBLE_GOLDEN: u64 = 0xa635290fa36c7ef4;

fn paper_artifacts() -> Vec<(&'static str, String)> {
    let results = ScenarioBuilder::paper(ExperimentConfig::paper_scripted(42))
        .build()
        .run();
    let f3 = figures::fig3_temperature(&results);
    let f4 = figures::fig4_humidity(&results);
    vec![
        ("t1_failures", tables::t1_failures(&results).to_string()),
        ("t2_hashes", tables::t2_hashes(&results).to_string()),
        ("t3_memory", tables::t3_memory(&results).to_string()),
        ("fig2_render", figures::fig2_render(results.window.1)),
        ("fig3_csv", f3.csv),
        ("fig3_summary", f3.summary),
        ("fig4_csv", f4.csv),
        ("fig4_summary", f4.summary),
        (
            "summary_json",
            results.summary().to_json().expect("summary serializes"),
        ),
        (
            "incident_log_json",
            results.incident_log_json().expect("ledger serializes"),
        ),
    ]
}

fn ensemble_invariant(threads: usize) -> String {
    run_summary_sweep(0, 6, threads, |seed| ExperimentConfig {
        fault_mode: FaultMode::Stochastic,
        ..ExperimentConfig::short(seed, 5)
    })
    .invariant_json()
    .expect("invariant summary serializes")
}

#[test]
fn paper_scenario_outputs_match_pre_refactor_golden_hashes() {
    let artifacts = paper_artifacts();
    if std::env::var_os("GOLDEN_PRINT").is_some() {
        for (name, body) in &artifacts {
            println!("(\"{name}\", {:#018x}),", fnv1a(body.as_bytes()));
        }
        return;
    }
    assert_eq!(artifacts.len(), PAPER_GOLDEN.len());
    for ((name, body), (gname, golden)) in artifacts.iter().zip(PAPER_GOLDEN) {
        assert_eq!(name, gname);
        assert_eq!(
            fnv1a(body.as_bytes()),
            *golden,
            "artifact {name} drifted from the pre-refactor monolith \
             (first 300 chars):\n{}",
            &body[..body.len().min(300)]
        );
    }
}

#[test]
fn ensemble_sweep_matches_golden_at_one_and_four_threads() {
    let t1 = ensemble_invariant(1);
    let t4 = ensemble_invariant(4);
    assert_eq!(t1, t4, "thread-count invariance violated");
    if std::env::var_os("GOLDEN_PRINT").is_some() {
        println!("ENSEMBLE_GOLDEN = {:#018x}", fnv1a(t1.as_bytes()));
        return;
    }
    assert_eq!(
        fnv1a(t1.as_bytes()),
        ENSEMBLE_GOLDEN,
        "ensemble invariant summary drifted:\n{t1}"
    );
}
