//! The observatory's contracts, enforced end to end:
//!
//! 1. **Observation is free of side effects** — an observed campaign
//!    produces exactly the results of an unobserved one (the observatory
//!    draws no randomness, so the golden hashes never move).
//! 2. **Alerting is deterministic** — the alert timeline and the health
//!    digest are pure functions of the config: identical across repeated
//!    runs and across worker-thread counts.
//! 3. **The paper gate** — the scripted campaign's `corruption-rate` SLO
//!    sees exactly the paper's 5 bad hashes within its 5/27,627 budget.
//!
//! The `obs-determinism` CI job re-checks the same properties on the
//! built `obs_report` binary; this test keeps them enforced by plain
//! `cargo test`.

use frostlab::core::config::{ExperimentConfig, FaultMode};
use frostlab::core::ScenarioBuilder;
use frostlab::ensemble::run_observed_sweep;
use frostlab::obs::{HealthDigest, ObsConfig};
use frostlab::trace::TraceConfig;

fn stochastic(seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        fault_mode: FaultMode::Stochastic,
        ..ExperimentConfig::short(seed, 3)
    }
}

#[test]
fn observation_does_not_perturb_the_campaign() {
    let cfg = ExperimentConfig::short(11, 5);
    let plain = ScenarioBuilder::paper(cfg.clone()).build().run();
    let observed = ScenarioBuilder::paper(cfg)
        .with_tracing(TraceConfig::metrics_only())
        .with_observability(ObsConfig::default())
        .build()
        .run();

    assert_eq!(plain.workload.total_runs(), observed.workload.total_runs());
    assert_eq!(
        plain.workload.hash_errors().len(),
        observed.workload.hash_errors().len()
    );
    assert_eq!(plain.tent_energy_true_kwh, observed.tent_energy_true_kwh);
    assert_eq!(
        plain.tent_temp_truth.points(),
        observed.tent_temp_truth.points()
    );
    // The one deliberate side channel: SLO fires are mirrored into the
    // watchdog ledger as `slo-breach` incidents. Everything else in the
    // ledger must be untouched.
    let non_slo: Vec<_> = observed
        .incidents
        .iter()
        .filter(|i| i.kind.name() != "slo-breach")
        .collect();
    assert_eq!(plain.incidents.len(), non_slo.len());
    assert!(plain
        .incidents
        .iter()
        .all(|i| i.kind.name() != "slo-breach"));
    assert!(plain.obs.is_none(), "unobserved runs carry no observatory");
    assert!(observed.obs.is_some());
}

#[test]
fn alert_timeline_and_digest_are_thread_count_invariant() {
    let sweep = |threads: usize| {
        run_observed_sweep(
            7,
            4,
            threads,
            TraceConfig::metrics_only(),
            ObsConfig::default(),
            stochastic,
        )
    };
    let (_, metrics_a, alerts_a) = sweep(1);
    let (_, metrics_b, alerts_b) = sweep(4);
    assert_eq!(
        alerts_a.timeline_jsonl(),
        alerts_b.timeline_jsonl(),
        "alert timeline differs between 1 and 4 worker threads"
    );
    assert_eq!(
        alerts_a.to_json().expect("report serializes"),
        alerts_b.to_json().expect("report serializes"),
        "alerts report differs between 1 and 4 worker threads"
    );
    assert_eq!(
        metrics_a.to_json().expect("report serializes"),
        metrics_b.to_json().expect("report serializes"),
        "labeled metrics report differs between 1 and 4 worker threads"
    );
    assert_eq!(alerts_a.campaigns, 4);
    assert_eq!(alerts_a.seed_start, 7);
}

#[test]
fn repeated_observed_runs_emit_identical_bytes() {
    let digest = || {
        let results = ScenarioBuilder::paper(stochastic(3))
            .with_tracing(TraceConfig::metrics_only())
            .with_observability(ObsConfig::default())
            .build()
            .run();
        let obs = results
            .obs
            .expect("with_observability arms the observatory");
        let digest = HealthDigest::from_obs("short-3d", 3, &obs, 5);
        (obs.alert_timeline(), digest.render())
    };
    let (timeline_a, rendered_a) = digest();
    let (timeline_b, rendered_b) = digest();
    assert_eq!(timeline_a, timeline_b, "alert timeline is not reproducible");
    assert_eq!(rendered_a, rendered_b, "health digest is not reproducible");
}

/// The full scripted campaign reproduces the paper's corruption tally
/// through the SLO engine: exactly 5 bad md5sums, inside the 5/27,627
/// budget. Expensive (the whole Feb 12 – May 13 campaign), so release
/// builds only — the `obs-determinism` CI job runs it via `obs_report`.
#[test]
#[cfg_attr(debug_assertions, ignore = "full campaign; run with --release")]
fn scripted_campaign_attains_the_paper_corruption_slo() {
    let results = ScenarioBuilder::paper(ExperimentConfig::paper_scripted(42))
        .with_tracing(TraceConfig::metrics_only())
        .with_observability(ObsConfig::default())
        .build()
        .run();
    let obs = results
        .obs
        .expect("with_observability arms the observatory");
    let slo = obs
        .slos
        .iter()
        .find(|a| a.slo == "corruption-rate")
        .expect("paper defaults carry the corruption-rate SLO");
    assert_eq!(slo.bad, 5, "paper's corruption tally moved");
    assert!(slo.attained, "corruption-rate SLO breached its budget");
    assert!((slo.target - 5.0 / 27_627.0).abs() < 1e-12);
}
