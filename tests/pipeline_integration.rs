//! Cross-crate pipeline tests below campaign scale: the workload forensic
//! chain, the collection pipeline over the real frame-level network, and
//! the weather→tent→psychrometrics consistency loop.

use bytes::Bytes;
use frostlab::climate::presets;
use frostlab::climate::psychro;
use frostlab::climate::weather::WeatherModel;
use frostlab::compress::md5::md5_hex;
use frostlab::compress::recover::recover;
use frostlab::netsim::collector::{CollectOutcome, Collector, MonitoredHost};
use frostlab::netsim::frame::{Frame, MacAddr};
use frostlab::netsim::net::Network;
use frostlab::netsim::transport::{drive_until_idle, Endpoint};
use frostlab::simkern::rng::Rng;
use frostlab::simkern::time::{SimDuration, SimTime};
use frostlab::thermal::enclosure::Enclosure;
use frostlab::thermal::tent::{Tent, TentConfig, TentParams};
use frostlab::workload::job::{JobConfig, JobRunner};

#[test]
fn forensic_chain_job_to_recover() {
    let mut job = JobRunner::new(JobConfig::default(), &Rng::new(99));
    let golden = job.golden_hash().to_string();

    // 100 clean runs: hash always matches, nothing stored.
    for _ in 0..100 {
        let o = job.run(0);
        assert!(o.hash_ok);
        assert_eq!(o.hash, golden);
    }

    // One corrupted run: wrong hash, stored archive, ≤ 1 bad block.
    let o = job.run(1);
    assert!(!o.hash_ok);
    let archive = o.stored_archive.expect("stored on mismatch");
    assert_eq!(
        md5_hex(&archive),
        o.hash,
        "stored bytes hash to the reported value"
    );
    let report = recover(&archive);
    assert!(report.corrupted_count() <= 1);
    assert!(report.total_blocks() > 300);
}

#[test]
fn collection_over_real_frames() {
    // Move a host's md5 log to the collector over the actual simulated
    // switch fabric with loss, using the reliable transport, then rsync the
    // content into the mirror and verify byte equality.
    let rng = Rng::new(5);
    let mut net = Network::new(&rng);
    net.loss_prob = 0.05;
    let sw = net.add_switch();
    let host_mac = MacAddr::from_id(3);
    let coll_mac = MacAddr::from_id(100);
    net.add_host(host_mac);
    net.add_host(coll_mac);
    net.attach_host(host_mac, sw, 0).expect("free port");
    net.attach_host(coll_mac, sw, 1).expect("free port");

    // The host-side log content.
    let log: Vec<u8> = (0..200)
        .flat_map(|i| format!("2010-03-{:02} {:032x} run\n", i % 28 + 1, i * 31).into_bytes())
        .collect();

    // Ship it in 512-byte messages over the lossy fabric.
    let mut tx = Endpoint::new(host_mac, coll_mac);
    let mut rx = Endpoint::new(coll_mac, host_mac);
    for chunk in log.chunks(512) {
        tx.send(Bytes::copy_from_slice(chunk));
    }
    drive_until_idle(
        &mut net,
        &mut tx,
        &mut rx,
        SimTime::ZERO,
        SimDuration::secs(2),
        SimTime::from_secs(86_400),
    );
    let received: Vec<u8> = rx.take_delivered().into_iter().flatten().collect();
    assert_eq!(
        received, log,
        "transport must reassemble the log byte-exactly"
    );
    assert!(
        tx.retransmissions > 0,
        "loss should have forced retransmissions"
    );

    // Now run a collection round against a MonitoredHost carrying that log.
    let mut crng = Rng::new(6);
    let mut collector = Collector::new(&mut crng);
    let mut mhost = MonitoredHost::new(3, &mut crng, vec![collector.key.public]);
    mhost.append("md5sums-0307.log", &received);
    let outcome = collector.collect(&mut mhost, true, SimTime::from_secs(1200));
    match outcome {
        CollectOutcome::Success {
            files_updated,
            literal_bytes,
        } => {
            assert_eq!(files_updated, 1);
            assert_eq!(literal_bytes, log.len(), "first sync ships everything");
        }
        other => panic!("collection failed: {other:?}"),
    }
    assert_eq!(collector.mirrored(3, "md5sums-0307.log").unwrap(), &log[..]);
}

#[test]
fn weather_tent_psychrometrics_consistency() {
    // Over a simulated week: the tent's RH must equal (within the low-pass
    // filter's tolerance) the outside absolute moisture referred to the
    // tent temperature — i.e. the enclosure must not create or destroy
    // water vapor.
    let mut wx = WeatherModel::new(presets::helsinki_winter_2010(), 11);
    let first = wx.sample_at(SimTime::from_date(2010, 2, 20));
    let mut tent = Tent::new(TentParams::default(), TentConfig::initial(), &first);
    let mut t = SimTime::from_date(2010, 2, 20);
    let end = t + SimDuration::days(7);
    let mut worst_gap = 0.0f64;
    while t <= end {
        let w = wx.sample_at(t);
        tent.step(60.0, &w, 1000.0);
        let s = tent.state();
        let expected_rh = psychro::rh_after_heating(w.temp_c, w.rh_pct, s.air_temp_c);
        worst_gap = worst_gap.max((s.air_rh_pct - expected_rh).abs());
        t += SimDuration::minutes(1);
    }
    // The low-pass filter lags fast outside swings; 20 points of RH is the
    // generous bound, typical gaps are much smaller.
    assert!(
        worst_gap < 20.0,
        "tent RH diverged from psychrometrics by {worst_gap}"
    );
}

#[test]
fn tent_modifications_cool_a_simulated_cold_week() {
    // Drive both tent configurations through the same week of weather and
    // verify the fully modified tent runs colder on average — Fig. 3's
    // whole story in one assertion.
    let run = |config: TentConfig| {
        let mut wx = WeatherModel::new(presets::helsinki_winter_2010(), 13);
        let first = wx.sample_at(SimTime::from_date(2010, 2, 20));
        let mut tent = Tent::new(TentParams::default(), config, &first);
        let mut t = SimTime::from_date(2010, 2, 20);
        let end = t + SimDuration::days(7);
        let mut sum = 0.0;
        let mut n = 0u64;
        while t <= end {
            let w = wx.sample_at(t);
            tent.step(60.0, &w, 1000.0);
            sum += tent.state().air_temp_c;
            n += 1;
            t += SimDuration::minutes(1);
        }
        sum / n as f64
    };
    let initial = run(TentConfig::initial());
    let modified = run(TentConfig::fully_modified());
    assert!(
        initial - modified > 8.0,
        "modifications should cool the tent substantially: {initial:.1} → {modified:.1}"
    );
}

#[test]
fn broadcast_storm_does_not_duplicate_transport_messages() {
    // Flood-heavy startup (empty MAC tables) must not confuse the reliable
    // transport: payloads arrive exactly once, in order.
    let rng = Rng::new(21);
    let mut net = Network::new(&rng);
    let sw0 = net.add_switch();
    let sw1 = net.add_switch();
    net.link_switches(sw0, 7, sw1, 7).expect("free ports");
    let a_mac = MacAddr::from_id(1);
    let b_mac = MacAddr::from_id(2);
    net.add_host(a_mac);
    net.add_host(b_mac);
    net.attach_host(a_mac, sw0, 0).expect("free port");
    net.attach_host(b_mac, sw1, 0).expect("free port");
    // A few broadcast frames stir the fabric.
    for i in 0..5 {
        net.send(
            Frame::new(a_mac, MacAddr::BROADCAST, Bytes::from_static(b"arp?")),
            SimTime::from_secs(i),
        );
    }
    let mut tx = Endpoint::new(a_mac, b_mac);
    let mut rx = Endpoint::new(b_mac, a_mac);
    let msgs: Vec<Bytes> = (0..30).map(|i| Bytes::from(format!("m{i}"))).collect();
    for m in &msgs {
        tx.send(m.clone());
    }
    drive_until_idle(
        &mut net,
        &mut tx,
        &mut rx,
        SimTime::from_secs(10),
        SimDuration::secs(2),
        SimTime::from_secs(3600),
    );
    assert_eq!(rx.take_delivered(), msgs);
}
