//! Workspace-wide property tests (proptest): the invariants that must hold
//! for *arbitrary* inputs, not just the paper's.

use frostlab::climate::psychro;
use frostlab::compress::archive::{archive, unarchive, FileEntry};
use frostlab::compress::block::{compress, decompress};
use frostlab::compress::bwt::{bwt_forward, bwt_inverse};
use frostlab::compress::huffman;
use frostlab::compress::md5::md5;
use frostlab::compress::mtf::{mtf_decode, mtf_encode};
use frostlab::compress::recover::recover;
use frostlab::compress::rle::{rle_decode, rle_encode};
use frostlab::hardware::disk::{Disk, BLOCK_SIZE};
use frostlab::hardware::raid::{Raid1, Raid5};
use frostlab::netsim::rsyncp;
use frostlab::netsim::transport::drive_until_idle;
use frostlab::netsim::{Endpoint, MacAddr, Network};
use frostlab::simkern::event::EventQueue;
use frostlab::simkern::rng::Rng;
use frostlab::simkern::time::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn block_compression_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..8192),
                                    block_size in 64usize..4096) {
        let packed = compress(&data, block_size);
        prop_assert_eq!(decompress(&packed).expect("clean stream"), data);
    }

    #[test]
    fn rle_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        prop_assert_eq!(rle_decode(&rle_encode(&data)).expect("self-encoded"), data);
    }

    #[test]
    fn bwt_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let (last, primary) = bwt_forward(&data);
        prop_assert_eq!(bwt_inverse(&last, primary).expect("valid transform"), data);
    }

    #[test]
    fn mtf_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        prop_assert_eq!(mtf_decode(&mtf_encode(&data)), data);
    }

    #[test]
    fn huffman_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let (lengths, bits, _) = huffman::encode(&data);
        prop_assert_eq!(huffman::decode(&lengths, &bits, data.len()).expect("own code"), data);
    }

    #[test]
    fn single_bit_flip_never_passes_silently(
        data in proptest::collection::vec(any::<u8>(), 256..4096),
        flip_seed in any::<u64>(),
    ) {
        // Any single-bit corruption of the archive must change the MD5 —
        // the property the whole verification scheme rests on.
        let packed = compress(&data, 512);
        let mut rng = Rng::new(flip_seed);
        let byte = rng.below(packed.len() as u64) as usize;
        let bit = rng.below(8) as u8;
        let mut corrupted = packed.clone();
        corrupted[byte] ^= 1 << bit;
        prop_assert_ne!(md5(&corrupted), md5(&packed));
        // And recover never reports more than one bad block for one flip.
        let report = recover(&corrupted);
        prop_assert!(report.corrupted_count() <= 1);
    }

    #[test]
    fn rsync_reconstructs_any_pair(
        old in proptest::collection::vec(any::<u8>(), 0..4096),
        new in proptest::collection::vec(any::<u8>(), 0..4096),
        block in 16usize..512,
    ) {
        let (rebuilt, _) = rsyncp::sync(&old, &new, block);
        prop_assert_eq!(rebuilt, new);
    }

    #[test]
    fn rsync_identical_files_ship_no_literals(
        data in proptest::collection::vec(any::<u8>(), 1..4096),
        block in 16usize..512,
    ) {
        let (_, delta) = rsyncp::sync(&data, &data, block);
        prop_assert_eq!(delta.literal_bytes(), 0);
    }

    #[test]
    fn tar_roundtrips(files in proptest::collection::vec(
        (proptest::string::string_regex("[a-z]{1,12}(/[a-z]{1,12}){0,3}").expect("valid regex"),
         proptest::collection::vec(any::<u8>(), 0..2048)),
        0..8,
    )) {
        // Deduplicate paths (tar allows duplicates, but equality then needs
        // order bookkeeping that obscures the property).
        let mut seen = std::collections::BTreeSet::new();
        let entries: Vec<FileEntry> = files
            .into_iter()
            .filter(|(p, _)| seen.insert(p.clone()))
            .map(|(path, data)| FileEntry { path, mode: 0o644, mtime: 1_266_000_000, data })
            .collect();
        let tar = archive(&entries);
        prop_assert_eq!(unarchive(&tar).expect("own archive"), entries);
    }

    #[test]
    fn raid5_tolerates_any_single_failure(
        writes in proptest::collection::vec((0usize..30, any::<u8>()), 1..40),
        victim in 0usize..3,
    ) {
        let mut arr = Raid5::new(vec![Disk::new(10), Disk::new(10), Disk::new(10)]);
        let mut model = vec![[0u8; BLOCK_SIZE]; arr.num_blocks()];
        for (block, byte) in writes {
            let block = block % arr.num_blocks();
            let data = [byte; BLOCK_SIZE];
            arr.write_block(block, &data).expect("healthy array");
            model[block] = data;
        }
        arr.member_mut(victim).fail();
        for (i, expect) in model.iter().enumerate() {
            prop_assert_eq!(&arr.read_block(i).expect("degraded read"), expect);
        }
    }

    #[test]
    fn raid1_mirrors_agree_after_any_write_sequence(
        writes in proptest::collection::vec((0usize..16, any::<u8>()), 1..40),
    ) {
        let mut arr = Raid1::new(Disk::new(16), Disk::new(16));
        for (block, byte) in &writes {
            arr.write_block(*block, &[*byte; BLOCK_SIZE]).expect("healthy mirror");
        }
        for i in 0..16 {
            let a = *arr.member(0).read_block(i).expect("member 0");
            let b = *arr.member(1).read_block(i).expect("member 1");
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn event_queue_pops_sorted(times in proptest::collection::vec(0i64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(SimTime::from_secs(*t), i);
        }
        let mut prev = SimTime::from_secs(-1);
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn dew_point_never_exceeds_temperature(
        t in -40.0f64..40.0,
        rh in 0.1f64..100.0,
    ) {
        let dp = psychro::dew_point_c(t, rh);
        prop_assert!(dp <= t + 0.3, "dp {dp} > t {t} at rh {rh}");
        // And heating at constant moisture always lowers RH.
        let rh_after = psychro::rh_after_heating(t, rh, t + 10.0);
        prop_assert!(rh_after <= rh + 1e-9);
    }

    #[test]
    fn rng_streams_stay_in_unit_interval(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        for _ in 0..256 {
            let x = rng.f64();
            prop_assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn memtest_no_false_positives(words in 16usize..512, rounds in 0u32..4, seed in any::<u64>()) {
        // A healthy DRAM array must never be condemned, for any geometry,
        // round count or random-data seed.
        let mut mem = frostlab::hardware::memtest::DramArray::new(words);
        let report = frostlab::hardware::memtest::run_memtest(&mut mem, rounds, seed);
        prop_assert!(report.passed(), "false positive: {:?}", &report.errors[..report.errors.len().min(2)]);
    }

    #[test]
    fn memtest_always_catches_stuck_bits(
        words in 16usize..256,
        word in 0usize..256,
        bit in 0u8..64,
        stuck_high in any::<bool>(),
    ) {
        // A hard stuck-at fault must be caught by the deterministic passes
        // alone (zero random rounds).
        let word = word % words;
        let mut mem = frostlab::hardware::memtest::DramArray::new(words);
        let value = if stuck_high { 1u64 << bit } else { 0 };
        mem.inject_stuck_at(word, 1u64 << bit, value);
        let report = frostlab::hardware::memtest::run_memtest(&mut mem, 0, 1);
        prop_assert!(!report.passed(), "stuck bit {bit} of word {word} escaped");
        prop_assert!(report.errors.iter().any(|e| e.word == word));
    }

    #[test]
    fn wilson_interval_always_contains_point_estimate(
        successes in 0u64..1000,
        extra in 0u64..1000,
    ) {
        let trials = successes + extra;
        prop_assume!(trials > 0);
        let (lo, hi) = frostlab::analysis::stats::wilson_interval(successes, trials);
        let p = successes as f64 / trials as f64;
        prop_assert!(lo <= p + 1e-12 && p <= hi + 1e-12, "[{lo},{hi}] vs {p}");
        prop_assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
    }

    #[test]
    fn kaplan_meier_monotone_and_bounded(
        obs in proptest::collection::vec((1.0f64..5000.0, any::<bool>()), 1..60),
    ) {
        use frostlab::analysis::survival::{kaplan_meier, Observation};
        let data: Vec<Observation> = obs
            .into_iter()
            .map(|(hours, failed)| Observation { hours, failed })
            .collect();
        let curve = kaplan_meier(&data);
        let mut prev = 1.0;
        for step in &curve {
            prop_assert!(step.survival <= prev + 1e-12);
            prop_assert!((0.0..=1.0).contains(&step.survival));
            prev = step.survival;
        }
    }

    #[test]
    fn wet_bulb_never_exceeds_dry_bulb(t in -25.0f64..45.0, rh in 5.0f64..99.0) {
        let wb = frostlab::energy::wetside::wet_bulb_c(t, rh);
        prop_assert!(wb <= t, "wb {wb} > t {t} at rh {rh}");
        prop_assert!(wb > t - 30.0, "absurd depression: {wb} at t {t}, rh {rh}");
    }

    #[test]
    fn transport_delivers_in_order_under_loss_reorder_and_dup(
        seed in any::<u64>(),
        loss_pct in 0u8..35,
        jitter_secs in 0i64..4,
        dup_pct in 0u8..25,
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..256),
            1..10,
        ),
    ) {
        // The adaptive-RTO transport must deliver every message, in order
        // and exactly once, across a network that simultaneously drops,
        // reorders (via random per-hop jitter) and duplicates frames.
        let mut net = Network::new(&Rng::new(seed));
        let sw = net.add_switch();
        let (ma, mb) = (MacAddr::from_id(1), MacAddr::from_id(2));
        net.add_host(ma);
        net.add_host(mb);
        net.attach_host(ma, sw, 0).expect("free port");
        net.attach_host(mb, sw, 1).expect("free port");
        net.loss_prob = loss_pct as f64 / 100.0;
        net.jitter_max = SimDuration::secs(jitter_secs);
        net.dup_prob = dup_pct as f64 / 100.0;

        let mut a = Endpoint::new(ma, mb);
        let mut b = Endpoint::new(mb, ma);
        let sent: Vec<bytes::Bytes> = payloads
            .into_iter()
            .map(bytes::Bytes::from)
            .collect();
        for m in &sent {
            a.send(m.clone());
        }
        let start = SimTime::from_secs(0);
        // Worst case: every in-flight segment hits max backoff repeatedly;
        // a generous deadline keeps the property about *correctness*, not
        // speed.
        let deadline = start + SimDuration::days(30);
        drive_until_idle(&mut net, &mut a, &mut b, start, SimDuration::secs(1), deadline);
        prop_assert!(!a.peer_dead(), "peer declared dead under recoverable conditions");
        prop_assert_eq!(b.take_delivered(), sent);
        prop_assert!(a.outstanding() == 0 && a.idle());
    }

    #[test]
    fn transport_declares_dead_peer_within_retry_budget(
        seed in any::<u64>(),
        max_retries in 1u32..6,
    ) {
        // Regression for the dead-peer path: against a black-hole network
        // the sender must give up after exactly `max_retries`
        // retransmissions and surface `PeerDead` — never spin forever.
        let mut net = Network::new(&Rng::new(seed));
        let sw = net.add_switch();
        let (ma, mb) = (MacAddr::from_id(1), MacAddr::from_id(2));
        net.add_host(ma);
        net.add_host(mb);
        net.attach_host(ma, sw, 0).expect("free port");
        net.attach_host(mb, sw, 1).expect("free port");
        net.loss_prob = 1.0;

        let mut a = Endpoint::new(ma, mb);
        let mut b = Endpoint::new(mb, ma);
        a.max_retries = max_retries;
        a.send(bytes::Bytes::from_static(b"is anyone there"));
        let start = SimTime::from_secs(0);
        drive_until_idle(
            &mut net,
            &mut a,
            &mut b,
            start,
            SimDuration::secs(1),
            start + SimDuration::days(30),
        );
        prop_assert!(a.peer_dead());
        prop_assert_eq!(a.error(), Some(frostlab::netsim::NetError::PeerDead));
        prop_assert_eq!(a.retransmissions, max_retries as u64);
        prop_assert!(b.take_delivered().is_empty());
    }

    #[test]
    fn huffman_never_beats_entropy(
        data in proptest::collection::vec(0u8..8, 64..2048),
    ) {
        // Information-theoretic sanity: coded length ≥ Shannon entropy.
        let mut counts = [0u64; 256];
        for &b in &data {
            counts[b as usize] += 1;
        }
        let n = data.len() as f64;
        let entropy_bits: f64 = counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n;
                -(c as f64) * p.log2()
            })
            .sum();
        let (_, _, bits) = huffman::encode(&data);
        prop_assert!(bits as f64 >= entropy_bits - 1e-6, "{bits} bits vs H = {entropy_bits}");
        // And within one bit per symbol of optimal.
        prop_assert!((bits as f64) <= entropy_bits + n + 1.0);
    }
}

// ---------------------------------------------------------------------------
// Ensemble engine: streaming aggregation vs exact offline computation, and
// order-independence of the merge (the property the thread-count-invariance
// gate rests on).
// ---------------------------------------------------------------------------

use frostlab::analysis::stats::{Histogram, Welford};
use frostlab::analysis::{
    mean as offline_mean, percentile as offline_percentile, std_dev as offline_std_dev,
};
use frostlab::core::results::CampaignSummary;
use frostlab::ensemble::CampaignAggregate;

/// Synthetic campaign summary from a proptest-drawn tuple: failure counts,
/// a fleet rate in [0, 1], an availability in [0, 1], and an energy figure.
fn synth_summary(
    seed: u64,
    (tent, control, rate, avail, energy): (u64, u64, f64, f64, f64),
) -> CampaignSummary {
    CampaignSummary {
        seed,
        start: "2010-02-12 00:00".into(),
        end: "2010-02-14 00:00".into(),
        total_runs: 10 * seed,
        wrong_hashes: (tent + control) as usize,
        wrong_hashes_tent: tent as usize,
        silent_corruptions: control,
        stored_archives: tent as usize,
        failed_hosts_tent: tent,
        failed_hosts_control: control,
        host_resets: seed % 3,
        fleet_failure_rate: rate,
        comparable_with_intel: rate < 0.3,
        outside_min_c: -30.0 + rate * 10.0,
        tent_temp_min_c: -10.0 + avail,
        tent_temp_max_c: 20.0 + avail,
        tent_rh_max_pct: 50.0 + 40.0 * avail,
        fleet_min_cpu_c: -5.0 + rate,
        collection_availability: avail,
        tent_energy_kwh: energy,
        lascar_outliers_removed: 0,
        total_page_ops: 1000 + seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn streaming_mean_variance_match_offline(
        xs in proptest::collection::vec(-1e3f64..1e3, 2..128),
    ) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let m = offline_mean(&xs).expect("non-empty");
        let sd = offline_std_dev(&xs).expect("n >= 2");
        prop_assert!((w.mean().unwrap() - m).abs() <= 1e-9 * (1.0 + m.abs()));
        prop_assert!((w.std_dev().unwrap() - sd).abs() <= 1e-7 * (1.0 + sd));
    }

    #[test]
    fn welford_merge_is_order_independent_up_to_rounding(
        xs in proptest::collection::vec(-1e3f64..1e3, 3..96),
        cut_a in 0usize..96,
        cut_b in 0usize..96,
    ) {
        // Split the samples into three runs at arbitrary points and merge
        // the partials in two different association orders; both must
        // agree with the single-pass fold to floating-point tolerance.
        let (mut i, mut j) = (cut_a % xs.len(), cut_b % xs.len());
        if i > j {
            std::mem::swap(&mut i, &mut j);
        }
        let parts = [&xs[..i], &xs[i..j], &xs[j..]];
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let fold = |slice: &[f64]| {
            let mut w = Welford::new();
            for &x in slice {
                w.push(x);
            }
            w
        };
        let (a, b, c) = (fold(parts[0]), fold(parts[1]), fold(parts[2]));
        // (a ∪ b) ∪ c
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        // c ∪ (b ∪ a): different association AND different order.
        let mut right = c;
        let mut ba = b;
        ba.merge(&a);
        right.merge(&ba);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert_eq!(right.count(), whole.count());
        for w in [&left, &right] {
            prop_assert!((w.mean().unwrap() - whole.mean().unwrap()).abs() <= 1e-9);
            prop_assert!((w.variance().unwrap() - whole.variance().unwrap()).abs() <= 1e-6);
        }
    }

    #[test]
    fn histogram_percentile_matches_offline_within_one_bin(
        xs in proptest::collection::vec(0f64..1.0, 1..256),
        p in 0f64..100.0,
    ) {
        // Tolerance: the histogram only knows which 0.0125-wide bin each
        // sample fell in. It mirrors `percentile`'s rank interpolation,
        // and both anchor estimates stay inside their sample's bin, so
        // ONE bin width bounds the error against the exact offline
        // computation.
        let mut h = Histogram::new(0.0, 0.0125, 80);
        for &x in &xs {
            h.push(x);
        }
        let exact = offline_percentile(&xs, p).unwrap();
        let est = h.percentile(p).expect("non-empty");
        prop_assert!(
            (est - exact).abs() <= h.width + 1e-12,
            "p{}: estimate {} vs exact {}", p, est, exact
        );
    }

    #[test]
    fn ensemble_merge_is_associative_and_order_independent(
        raws in proptest::collection::vec(
            (0u64..4, 0u64..3, 0f64..1.0, 0f64..1.0, 0f64..1500.0),
            1..40,
        ),
        cut_a in 0usize..40,
        cut_b in 0usize..40,
    ) {
        let summaries: Vec<CampaignSummary> = raws
            .iter()
            .enumerate()
            .map(|(i, raw)| synth_summary(i as u64, *raw))
            .collect();
        let mut whole = CampaignAggregate::new();
        for s in &summaries {
            whole.absorb(s);
        }
        let (mut i, mut j) = (cut_a % summaries.len(), cut_b % summaries.len());
        if i > j {
            std::mem::swap(&mut i, &mut j);
        }
        let fold = |slice: &[CampaignSummary]| {
            let mut agg = CampaignAggregate::new();
            for s in slice {
                agg.absorb(s);
            }
            agg
        };
        let (a, b, c) = (fold(&summaries[..i]), fold(&summaries[i..j]), fold(&summaries[j..]));
        // (a ∪ b) ∪ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // (c ∪ b) ∪ a — different association and order.
        let mut right = c;
        right.merge(&b);
        right.merge(&a);

        let whole = whole.finish(0, 1);
        for merged in [left.finish(0, 1), right.finish(0, 1)] {
            // Counters, min/max and histogram percentiles merge exactly.
            prop_assert_eq!(merged.campaigns, whole.campaigns);
            prop_assert_eq!(merged.total_page_ops, whole.total_page_ops);
            prop_assert_eq!(merged.campaigns_like_paper, whole.campaigns_like_paper);
            prop_assert_eq!(merged.campaigns_with_tent_failure, whole.campaigns_with_tent_failure);
            prop_assert_eq!(merged.silent_corruptions_total, whole.silent_corruptions_total);
            prop_assert_eq!(merged.outside_min_c, whole.outside_min_c);
            prop_assert_eq!(merged.tent_temp_min_c, whole.tent_temp_min_c);
            prop_assert_eq!(merged.tent_temp_max_c, whole.tent_temp_max_c);
            prop_assert_eq!(merged.fleet_failure_rate_p50, whole.fleet_failure_rate_p50);
            prop_assert_eq!(merged.fleet_failure_rate_p90, whole.fleet_failure_rate_p90);
            // Welford moments are associative up to rounding only.
            prop_assert!((merged.fleet_failure_rate_mean - whole.fleet_failure_rate_mean).abs() <= 1e-9);
            prop_assert!((merged.fleet_failure_rate_std - whole.fleet_failure_rate_std).abs() <= 1e-6);
            prop_assert!((merged.tent_energy_kwh_mean - whole.tent_energy_kwh_mean).abs() <= 1e-6);
            prop_assert!((merged.collection_availability_mean - whole.collection_availability_mean).abs() <= 1e-9);
        }
    }
}
