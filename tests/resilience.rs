//! Resilience integration tests: the collection pipeline under injected
//! chaos, and the bounded-repair guarantees of the failover machinery.
//!
//! The scripted replay (see `scripted_campaign.rs`) checks that the paper's
//! §4.2.1 history is reproduced faithfully; this suite checks the parts the
//! paper could not test — that the pipeline survives *arbitrary* adversity
//! drawn from the chaos engine, that every spare-backed switch death heals
//! within the modeled repair window, and that the retrying collector turns
//! outages into bounded, well-documented gaps instead of silent data loss.

use frostlab::core::config::{ExperimentConfig, FaultMode};
use frostlab::core::watchdog::IncidentKind;
use frostlab::core::ScenarioBuilder;
use frostlab::faults::chaos::{ChaosConfig, ChaosEngine, ChaosEvent};
use frostlab::netsim::collector::AttemptKind;
use frostlab::simkern::rng::Rng;
use frostlab::simkern::time::{SimDuration, SimTime};

/// A 25-day stochastic window with §4.2.1-grade chaos, hot enough that the
/// fault classes all fire but short enough for a debug-mode test.
fn chaos_config(seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        fault_mode: FaultMode::Stochastic,
        chaos: Some(ChaosConfig {
            link_loss_every: SimDuration::days(2),
            link_loss_burst: SimDuration::hours(2),
            link_loss_prob: 0.7,
            switch_death_every: SimDuration::days(8),
            host_hang_every: SimDuration::days(10),
            host_reboot_every: SimDuration::days(10),
            sensor_freeze_every: SimDuration::days(12),
            ..ChaosConfig::paper_like()
        }),
        ..ExperimentConfig::short(seed, 25)
    }
}

fn run_chaos(seed: u64) -> frostlab::core::ExperimentResults {
    ScenarioBuilder::paper(chaos_config(seed)).build().run()
}

#[test]
fn chaos_campaign_survives_and_documents_its_outages() {
    let results = run_chaos(99);

    // The campaign itself must remain healthy: the fleet keeps running the
    // synthetic load and the collector keeps (eventually) collecting.
    assert!(results.workload.total_runs() > 0);
    let avail = results.collection_availability();
    assert!(avail > 0.0 && avail <= 1.0, "availability {avail}");

    // Whatever went wrong is in the incident ledger, machine-readable.
    let json = results.incident_log_json().expect("plain data");
    assert!(
        json.starts_with('['),
        "incident log is a JSON array: {json}"
    );

    // Every healed collection gap is documented with its failed attempts.
    for gap in &results.collection_gaps {
        assert!(gap.failed_attempts > 0, "{gap:?}");
        assert!(gap.end > gap.start, "{gap:?}");
    }
}

#[test]
fn spare_backed_switch_deaths_heal_within_the_repair_window() {
    // The failover policy: dead switch → next working-day inspection
    // (Mon–Fri 10:00) → 90-minute swap. Worst case is a death just after
    // Friday's window closes, repaired Monday 11:30 — under four days.
    let results = run_chaos(7);
    let switch_incidents: Vec<_> = results
        .incidents
        .iter()
        .filter(|i| i.kind == IncidentKind::SwitchFailure)
        .collect();
    // Two scripted deaths (kept in stochastic mode) plus whatever chaos
    // injected inside the 25-day window.
    assert!(switch_incidents.len() >= 2, "{switch_incidents:?}");
    let campaign_end = results.window.1;
    for (n, incident) in switch_incidents.iter().enumerate() {
        // The two spares cover the two scripted deaths; chaos deaths beyond
        // the shelf stay open until campaign end — that is the modeled
        // reality, not a bug. Spare-backed ones must resolve in bounds.
        if let Some(resolved) = incident.resolved {
            let outage = resolved - incident.started;
            assert!(
                outage < SimDuration::days(4),
                "incident {n} outage {:.1} days exceeds the repair window: {incident:?}",
                outage.as_days_f64()
            );
            assert!(resolved <= campaign_end);
        }
    }
}

#[test]
fn chaos_campaigns_are_reproducible_and_seed_sensitive() {
    let a = run_chaos(33);
    let b = run_chaos(33);
    assert_eq!(a.incidents, b.incidents, "same seed, same incident ledger");
    assert_eq!(a.collection.len(), b.collection.len());
    assert_eq!(a.workload.total_runs(), b.workload.total_runs());

    let c = run_chaos(34);
    // A different seed must reshuffle the chaos schedule (the engine draws
    // event times from seed-derived streams).
    assert!(
        a.incidents != c.incidents || a.collection.len() != c.collection.len(),
        "seeds 33 and 34 produced identical campaigns"
    );
}

#[test]
fn retries_are_bookkept_separately_from_the_cadence() {
    let results = run_chaos(55);
    let scheduled = results
        .collection
        .iter()
        .filter(|r| r.kind == AttemptKind::Scheduled)
        .count();
    let retries = results
        .collection
        .iter()
        .filter(|r| r.kind == AttemptKind::Retry)
        .count();
    assert!(scheduled > 0);
    assert!(retries > 0, "this much chaos must trigger catch-up retries");
    // Availability is computed over the scheduled cadence only: recomputing
    // it from scratch over scheduled records must agree exactly.
    let ok = results
        .collection
        .iter()
        .filter(|r| {
            r.kind == AttemptKind::Scheduled
                && matches!(
                    r.outcome,
                    frostlab::netsim::collector::CollectOutcome::Success { .. }
                )
        })
        .count();
    let expect = ok as f64 / scheduled as f64;
    assert!((results.collection_availability() - expect).abs() < 1e-12);
}

#[test]
fn chaos_engine_schedule_is_stable_across_identical_runs() {
    // Belt-and-braces determinism check at the engine level, with the same
    // window the experiment uses.
    let cfg = ChaosConfig::paper_like();
    let window = (
        SimTime::from_date(2010, 2, 12),
        SimTime::from_date(2010, 5, 13),
    );
    let hosts: Vec<u32> = (1..=19).collect();
    let a = ChaosEngine::generate(&cfg, window, &hosts, 2, &Rng::new(42));
    let b = ChaosEngine::generate(&cfg, window, &hosts, 2, &Rng::new(42));
    assert_eq!(a.schedule(), b.schedule());
    assert!(a.len() > 20, "a three-month hostile campaign is eventful");
    // Sanity: all victims are real hosts / switches.
    for (_, ev) in a.schedule() {
        match ev {
            ChaosEvent::SwitchDeath { switch } => assert!(*switch < 2),
            ChaosEvent::HostHang { host }
            | ChaosEvent::HostReboot { host }
            | ChaosEvent::SensorFreeze { host } => assert!((1..=19).contains(host)),
            ChaosEvent::LinkLossBurst { loss, duration } => {
                assert!((0.0..=1.0).contains(loss));
                assert!(*duration > SimDuration::ZERO);
            }
            ChaosEvent::JitterBurst { .. } => {}
        }
    }
}
