//! The flagship integration test: run the full scripted campaign once and
//! check every headline number the paper reports.
//!
//! This is the one deliberately long test in the suite (~45 s debug): it
//! exercises every crate in the workspace end to end.

use frostlab::compress::recover::recover;
use frostlab::core::{tables, ExperimentConfig, ScenarioBuilder};
use frostlab::faults::repair::Disposition;
use frostlab::faults::types::FaultKind;
use frostlab::simkern::time::{SimDuration, SimTime};

fn campaign() -> frostlab::core::ExperimentResults {
    ScenarioBuilder::paper(ExperimentConfig::paper_scripted(42))
        .build()
        .run()
}

#[test]
fn full_scripted_campaign_reproduces_the_paper() {
    let results = campaign();

    // --- T1: failure rate 1/18 = 5.6 %, comparable to Intel's 4.46 % ---
    let cmp = results.failure_comparison();
    assert_eq!(
        cmp.outside.failed_hosts, 1,
        "exactly one failing host (tent)"
    );
    assert_eq!(cmp.control.failed_hosts, 0, "control group clean");
    assert!((cmp.fleet().rate - 1.0 / 18.0).abs() < 1e-12);
    assert!(cmp.comparable_with_intel());

    // --- host #15's saga ---
    let h15 = &results.hosts[&15];
    assert_eq!(h15.failures.len(), 2, "two transient failures");
    assert_eq!(h15.failures[0], SimTime::from_ymd_hms(2010, 3, 7, 4, 40, 0));
    assert_eq!(
        h15.failures[1],
        SimTime::from_ymd_hms(2010, 3, 17, 12, 20, 0)
    );
    assert_eq!(h15.resets, 1, "one in-place reset (the Monday visit)");
    assert_eq!(h15.disposition, Disposition::TakenIndoors);
    assert_eq!(
        h15.memtest_failed,
        Some(true),
        "the indoor Memtest86+ run condemned host #15's DIMM"
    );
    // The replacement (#19) ran and stayed healthy.
    let h19 = &results.hosts[&19];
    assert!(h19.failures.is_empty());

    // --- T2: five wrong hashes, 2 tent / 3 basement, host 9 three times ---
    assert_eq!(results.workload.hash_errors().len(), 5);
    assert_eq!(results.workload.hash_errors_by_placement(), (2, 3));
    let per_host = results.workload.hash_errors_by_host();
    assert_eq!(per_host[&9], 3);
    assert_eq!(per_host[&3], 1);
    assert_eq!(per_host[&10], 1);

    // --- §4.2.2 forensics: stored archives, single-block damage ---
    assert_eq!(results.stored_archives.len(), 5);
    for archive in &results.stored_archives {
        let report = recover(&archive.bytes);
        assert!(
            report.total_blocks() >= 300,
            "block count {} should be near the paper's 396",
            report.total_blocks()
        );
        assert!(
            report.corrupted_count() <= 1,
            "one flipped bit damages at most one block"
        );
    }

    // --- sensor-chip saga: host #1 produced −111 °C readings and healed ---
    let h1 = &results.hosts[&1];
    assert!(h1.sensor_erratic_reads > 0, "erratic reads recorded");
    assert!(
        results
            .fault_events
            .iter()
            .any(|e| e.host.0 == 1 && e.kind == FaultKind::SensorChipErratic),
        "sensor fault event recorded"
    );

    // --- sub-zero CPUs, disks fine ---
    assert!(results.fleet_min_cpu_c() < 0.0, "CPUs ran below freezing");
    assert!(results.fleet_min_cpu_c() > -15.0, "but not absurdly so");
    for h in results.hosts.values() {
        assert!(
            h.disks_pass_long_test,
            "host {} disks must pass (paper: S.M.A.R.T. clean)",
            h.id
        );
    }

    // --- switch deaths show up as collection unavailability ---
    let avail = results.collection_availability();
    assert!(avail < 1.0, "switch outage must cost some rounds");
    assert!(avail > 0.9, "but only a few days' worth: {avail}");
    assert!(
        results
            .fault_events
            .iter()
            .filter(|e| e.kind == FaultKind::SwitchFailure)
            .count()
            == 2
    );

    // --- the Lascar: late start, readout outliers removed ---
    assert!(
        results.lascar_temp.start().expect("lascar has data") >= SimTime::from_date(2010, 3, 5),
        "no inside data before the logger arrived"
    );
    assert!(
        results.lascar_outliers_removed > 0,
        "indoor excursions cleaned"
    );
    assert!(
        results.lascar_temp_raw.len() > results.lascar_temp.len(),
        "cleaning removed samples"
    );

    // --- physics sanity across the campaign ---
    let out_min = results
        .outside
        .iter()
        .map(|o| o.temp_c)
        .fold(f64::INFINITY, f64::min);
    assert!(
        (-30.0..-12.0).contains(&out_min),
        "deep cold happened: {out_min}"
    );
    let tent_min = results.tent_temp_truth.min().expect("tent data");
    assert!(
        tent_min > out_min,
        "tent stays above outside at the minimum"
    );
    let basement_band = (
        results.basement_temp.min().expect("data"),
        results.basement_temp.max().expect("data"),
    );
    assert!(
        basement_band.0 > 18.0 && basement_band.1 < 25.0,
        "control in spec {basement_band:?}"
    );

    // --- energy ---
    assert!(results.tent_energy_true_kwh > 500.0);
    assert!(
        (results.tent_energy_metered_kwh - results.tent_energy_true_kwh).abs()
            < 0.05 * results.tent_energy_true_kwh,
        "the Technoline is accurate to a few percent"
    );

    // --- every table renders against these results ---
    for table in [
        tables::t1_failures(&results).to_string(),
        tables::t2_hashes(&results).to_string(),
        tables::t3_memory(&results).to_string(),
        tables::t4_pue().to_string(),
        tables::t6_savings(42).to_string(),
    ] {
        assert!(table.lines().count() >= 4, "table too small:\n{table}");
    }

    // --- collection traffic is rsync-efficient ---
    let literal = results.collection_literal_bytes();
    // Every byte appended to logs crosses once (plus block-rounding); the
    // fleet appends ~10 KB/host/day ⇒ total literal transfer should be of
    // that order, far below a naive full-file-every-20-min scheme.
    assert!(literal > 1_000_000, "some bytes must move: {literal}");
    assert!(
        literal < 200_000_000,
        "delta sync must not ship whole files every round: {literal}"
    );

    // --- collection gap during the switch outage (Feb 26 – Mar 1) ---
    let outage_start = SimTime::from_ymd_hms(2010, 2, 28, 14, 0, 0);
    let outage_end = outage_start + SimDuration::hours(12);
    let failed_rounds = results
        .collection
        .iter()
        .filter(|r| {
            r.at >= outage_start
                && r.at <= outage_end
                && matches!(
                    r.outcome,
                    frostlab::netsim::collector::CollectOutcome::Unreachable { .. }
                )
        })
        .count();
    assert!(
        failed_rounds > 0,
        "tent hosts unreachable during the outage"
    );

    // --- unreachable rounds carry the gap duration, growing monotonically
    // per host while the outage lasts ---
    let mut host_gaps: std::collections::BTreeMap<u32, Vec<SimDuration>> =
        std::collections::BTreeMap::new();
    for r in &results.collection {
        if let frostlab::netsim::collector::CollectOutcome::Unreachable { gap } = r.outcome {
            host_gaps.entry(r.host).or_default().push(gap);
        }
    }
    assert!(!host_gaps.is_empty());
    let long_gaps = host_gaps
        .values()
        .flatten()
        .filter(|g| **g > SimDuration::days(2))
        .count();
    assert!(
        long_gaps > 0,
        "the weekend outage produced multi-day staleness"
    );

    // --- the retrying collector healed the outage right after the repair ---
    let restored = SimTime::from_ymd_hms(2010, 3, 1, 11, 30, 0);
    assert!(!results.collection_gaps.is_empty());
    let outage_heals = results
        .collection_gaps
        .iter()
        .filter(|g| g.end > restored && g.end - restored < SimDuration::minutes(30))
        .count();
    // Five tent hosts (1, 2, 3, 6, 10) were installed before the outage;
    // each should recover within one capped retry (≤ 20 min + jitter)
    // instead of waiting for the next scheduled round.
    assert!(
        outage_heals >= 5,
        "every installed tent host should recover within one capped retry: {:?}",
        results.collection_gaps
    );

    // --- the watchdog's incident log covers the whole §4.2.1 story ---
    use frostlab::core::watchdog::IncidentKind;
    let switch_incidents: Vec<_> = results
        .incidents
        .iter()
        .filter(|i| i.kind == IncidentKind::SwitchFailure)
        .collect();
    assert_eq!(switch_incidents.len(), 2, "{:?}", results.incidents);
    for i in &switch_incidents {
        assert_eq!(i.resolved, Some(restored), "{i:?}");
        assert_eq!(i.resolution.as_deref(), Some("spare switch swapped in"));
    }
    let h15_incidents: Vec<_> = results
        .incidents
        .iter()
        .filter(|i| i.kind == IncidentKind::HostHang && i.subject == "host-15")
        .collect();
    assert_eq!(
        h15_incidents.len(),
        2,
        "both hangs logged: {:?}",
        results.incidents
    );
    assert_eq!(
        h15_incidents[0].resolution.as_deref(),
        Some("reset in place"),
        "first hang ends with the Monday reset"
    );
    assert_eq!(
        h15_incidents[1].resolution.as_deref(),
        Some("taken indoors (memtest)"),
        "second hang ends the host's campaign"
    );
    let sensor_incidents = results
        .incidents
        .iter()
        .filter(|i| i.kind == IncidentKind::SensorFault && i.subject == "host-1/sensor")
        .count();
    assert!(sensor_incidents >= 1, "the sensor saga is on the books");
    // No unexplained staleness alarms in the faithful replay: every stale
    // mirror traces back to a switch death or a hung host.
    assert!(
        !results
            .incidents
            .iter()
            .any(|i| i.kind == IncidentKind::CollectionStale),
        "{:?}",
        results.incidents
    );
    // And the whole ledger serializes for dashboards.
    let json = results.incident_log_json().expect("plain data");
    assert!(json.contains("\"switch-0\"") && json.contains("\"host-15\""));
}
