//! Stochastic-mode integration tests: faults drawn from the hazard models
//! over shortened windows (debug-speed), checking calibration bands and
//! reproducibility rather than exact history.

use frostlab::core::config::{ExperimentConfig, FaultMode};
use frostlab::core::ScenarioBuilder;
use frostlab::faults::common_cause::{common_cause_candidates, DetectorConfig};
use frostlab::faults::types::FaultKind;
use frostlab::simkern::time::{SimDuration, SimTime};

fn stochastic_window(seed: u64, days: i64) -> frostlab::core::ExperimentResults {
    let cfg = ExperimentConfig {
        fault_mode: FaultMode::Stochastic,
        end: SimTime::from_date(2010, 2, 12) + SimDuration::days(days),
        ..ExperimentConfig::short(seed, days)
    };
    ScenarioBuilder::paper(cfg).build().run()
}

#[test]
fn stochastic_mode_is_deterministic_per_seed() {
    let a = stochastic_window(3, 20);
    let b = stochastic_window(3, 20);
    assert_eq!(a.fault_events.len(), b.fault_events.len());
    assert_eq!(a.workload.total_runs(), b.workload.total_runs());
    assert_eq!(
        a.workload.hash_errors().len(),
        b.workload.hash_errors().len()
    );
}

#[test]
fn stochastic_seeds_differ() {
    let a = stochastic_window(1, 20);
    let b = stochastic_window(2, 20);
    // Weather alone differs; run counts (jitter, hangs) almost surely too.
    let same_outside = a
        .outside
        .iter()
        .zip(&b.outside)
        .filter(|(x, y)| x.temp_c == y.temp_c)
        .count();
    assert!(same_outside < a.outside.len() / 10);
}

#[test]
fn stochastic_failure_counts_in_calibration_band() {
    // Across a handful of 20-day windows, total hangs should be small but
    // not always zero (the hazard calibration: ~1–2 per 90-day campaign).
    let mut total_hangs = 0usize;
    for seed in 0..6 {
        let r = stochastic_window(seed, 20);
        total_hangs += r
            .fault_events
            .iter()
            .filter(|e| e.kind == FaultKind::TransientSystemFailure)
            .count();
    }
    assert!(
        total_hangs <= 12,
        "6 windows × 20 days should not produce {total_hangs} hangs"
    );
}

#[test]
fn stochastic_repair_workflow_executes() {
    // Find some window where a hang occurred and check the machinery ran.
    for seed in 0..12 {
        let r = stochastic_window(seed, 20);
        let hang = r
            .fault_events
            .iter()
            .find(|e| e.kind == FaultKind::TransientSystemFailure);
        if let Some(ev) = hang {
            let h = &r.hosts[&ev.host.0];
            assert!(!h.failures.is_empty());
            // The host was either reset (visit happened) or is still
            // awaiting its inspection at campaign end — both are valid.
            return;
        }
    }
    // No hang in any window is possible but unlikely; don't fail the suite.
}

#[test]
fn no_common_cause_clusters_in_nominal_winters() {
    // The paper found none; nominal stochastic winters shouldn't fabricate
    // them either (sensor cold faults need deep-cold CPUs, which the warm
    // tent largely prevents).
    let r = stochastic_window(7, 20);
    let clusters = common_cause_candidates(
        &r.fault_events
            .iter()
            .filter(|e| e.kind != FaultKind::MemoryBitFlip)
            .cloned()
            .collect::<Vec<_>>(),
        &DetectorConfig::default(),
    );
    assert!(
        clusters.len() <= 1,
        "unexpected common-cause clusters: {clusters:?}"
    );
}

#[test]
fn ecc_hosts_never_store_archives() {
    // Vendor C has ECC: its flips correct, never corrupting a run.
    for seed in 0..4 {
        let r = stochastic_window(seed, 15);
        for err in r.workload.hash_errors() {
            let host = &r.hosts[&err.host];
            assert_ne!(
                host.vendor,
                frostlab::hardware::server::Vendor::C,
                "ECC host produced a wrong hash"
            );
        }
    }
}
