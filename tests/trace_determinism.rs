//! The tracing layer's two contracts, enforced end to end:
//!
//! 1. **Observation is free of side effects** — a traced campaign
//!    produces exactly the results of an untraced one (the tracer draws
//!    no randomness, so the golden hashes never move).
//! 2. **Exports are deterministic** — every byte of JSONL, Chrome
//!    trace-event JSON and Prometheus text is a pure function of the
//!    config, identical across repeated runs and (for ensemble metric
//!    reports) across worker-thread counts.
//!
//! The `trace-determinism` CI job re-checks the same properties on the
//! built binaries; this test keeps them enforced by plain `cargo test`.

use frostlab::core::config::{ExperimentConfig, FaultMode};
use frostlab::core::ScenarioBuilder;
use frostlab::ensemble::run_traced_sweep;
use frostlab::trace::export::{to_chrome_trace, to_jsonl, to_prometheus};
use frostlab::trace::TraceConfig;

fn traced_exports(seed: u64, days: i64) -> (String, String, String) {
    let results = ScenarioBuilder::paper(ExperimentConfig::short(seed, days))
        .with_tracing(TraceConfig::default())
        .build()
        .run();
    let trace = results
        .trace
        .as_ref()
        .expect("with_tracing arms the tracer");
    (
        to_jsonl(trace).expect("trace serializes"),
        to_chrome_trace(trace).expect("trace serializes"),
        to_prometheus(&trace.metrics),
    )
}

#[test]
fn tracing_does_not_perturb_the_campaign() {
    let cfg = ExperimentConfig::short(11, 5);
    let plain = ScenarioBuilder::paper(cfg.clone()).build().run();
    let traced = ScenarioBuilder::paper(cfg)
        .with_tracing(TraceConfig::default())
        .build()
        .run();

    assert_eq!(plain.workload.total_runs(), traced.workload.total_runs());
    assert_eq!(
        plain.workload.hash_errors().len(),
        traced.workload.hash_errors().len()
    );
    assert_eq!(plain.tent_energy_true_kwh, traced.tent_energy_true_kwh);
    assert_eq!(
        plain.tent_temp_truth.points(),
        traced.tent_temp_truth.points()
    );
    assert_eq!(plain.incidents.len(), traced.incidents.len());
    assert!(plain.trace.is_none(), "untraced runs carry no trace");
    assert!(traced.trace.is_some());
}

#[test]
fn repeated_traced_runs_export_identical_bytes() {
    let (jsonl_a, chrome_a, prom_a) = traced_exports(42, 4);
    let (jsonl_b, chrome_b, prom_b) = traced_exports(42, 4);
    assert_eq!(jsonl_a, jsonl_b, "JSONL export is not reproducible");
    assert_eq!(
        chrome_a, chrome_b,
        "Chrome trace export is not reproducible"
    );
    assert_eq!(prom_a, prom_b, "Prometheus export is not reproducible");

    // And a different seed genuinely changes the story. (In a short
    // window the *events* — phase steps, scheduled collections — are
    // pure schedule, so the seed shows up in the sampled weather
    // gauges, not the span log.)
    let (_, _, prom_c) = traced_exports(43, 4);
    assert_ne!(prom_a, prom_c, "seed is not reaching the metrics");
}

#[test]
fn ensemble_metrics_report_is_thread_count_invariant() {
    let stochastic = |seed: u64| ExperimentConfig {
        fault_mode: FaultMode::Stochastic,
        ..ExperimentConfig::short(seed, 3)
    };
    let (_, serial) = run_traced_sweep(7, 4, 1, TraceConfig::metrics_only(), stochastic);
    let (_, parallel) = run_traced_sweep(7, 4, 4, TraceConfig::metrics_only(), stochastic);
    assert_eq!(
        serial.to_json().expect("report serializes"),
        parallel.to_json().expect("report serializes"),
        "metrics report differs between 1 and 4 worker threads"
    );
    assert_eq!(serial.campaigns, 4);
    assert_eq!(serial.seed_start, 7);
}
