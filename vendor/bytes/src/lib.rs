//! Minimal, offline, API-compatible subset of the `bytes` crate.
//!
//! The build container has no crates.io access, so the workspace vendors the
//! small slice of `bytes` it actually uses: cheaply cloneable immutable
//! buffers ([`Bytes`]), an append-only builder ([`BytesMut`]) and the
//! big-endian put-helpers of the [`BufMut`] trait. Semantics match the real
//! crate for this subset (shared storage, zero-copy `slice`/`freeze`).

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes {
    data: Repr,
    start: usize,
    end: usize,
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
}

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Bytes {
        Bytes {
            data: Repr::Static(&[]),
            start: 0,
            end: 0,
        }
    }

    /// Wrap a static slice without copying.
    pub const fn from_static(s: &'static [u8]) -> Bytes {
        Bytes {
            data: Repr::Static(s),
            start: 0,
            end: s.len(),
        }
    }

    /// Copy an arbitrary slice into a new shared buffer.
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    fn as_slice(&self) -> &[u8] {
        match &self.data {
            Repr::Static(s) => &s[self.start..self.end],
            Repr::Shared(v) => &v[self.start..self.end],
        }
    }

    /// Zero-copy sub-slice sharing the same storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice {begin}..{end} of {len}");
        Bytes {
            data: self.data.clone(),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Copy out into an owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Repr::Shared(Arc::new(v)),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl std::iter::FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable byte buffer that freezes into an immutable [`Bytes`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// New empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    /// New empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Convert to an immutable shared buffer.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Big-endian append operations (the subset of `bytes::BufMut` in use).
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16);
    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32);
    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64);
    /// Append a slice.
    fn put_slice(&mut self, s: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_share_storage_and_compare() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.len(), 3);
        let s2 = s.slice(..2);
        assert_eq!(&s2[..], &[2, 3]);
        assert!(!s2.is_empty());
    }

    #[test]
    fn builder_round_trip() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(7);
        m.put_u64(0x0102030405060708);
        m.put_u32(9);
        m.extend_from_slice(b"xy");
        let b = m.freeze();
        assert_eq!(b.len(), 15);
        assert_eq!(b[0], 7);
        assert_eq!(&b[13..], b"xy");
    }

    #[test]
    fn static_and_copy_constructors() {
        assert_eq!(Bytes::from_static(b"abc"), Bytes::copy_from_slice(b"abc"));
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from(String::from("hi")).to_vec(), b"hi".to_vec());
    }
}
