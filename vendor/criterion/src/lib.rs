//! Offline mini-criterion.
//!
//! The real `criterion` crate is unavailable in this container, so this stub
//! implements the macro/type surface the workspace's benches use with a
//! simple wall-clock harness: each benchmark warms up briefly, then runs
//! until the configured measurement time (default 3 s) and reports the mean
//! iteration time to stdout. Statistical machinery (outlier analysis, HTML
//! reports) is intentionally absent.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (printed alongside the timing).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus a parameter tag.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Passed to the closure under test; `iter` runs and times the payload.
pub struct Bencher {
    /// Accumulated (iterations, elapsed) once measured.
    result: Option<(u64, Duration)>,
    measurement_time: Duration,
}

impl Bencher {
    /// Measure `f` repeatedly until the measurement window is filled.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one call, also seeds the per-iteration time estimate.
        let warm = Instant::now();
        black_box(f());
        let once = warm.elapsed().max(Duration::from_nanos(1));
        let target = self.measurement_time;
        // Aim for the measurement window, 1..=1_000_000 iterations.
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.result = Some((iters, start.elapsed()));
    }

    /// Like [`Bencher::iter`], but `setup` runs outside the timed region and
    /// produces the input consumed by each timed `routine` call.
    pub fn iter_with_setup<I, O, S, F>(&mut self, mut setup: S, mut routine: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Warm-up: one call, also seeds the per-iteration time estimate.
        let input = setup();
        let warm = Instant::now();
        black_box(routine(black_box(input)));
        let once = warm.elapsed().max(Duration::from_nanos(1));
        let target = self.measurement_time;
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(black_box(input)));
            total += start.elapsed();
        }
        self.result = Some((iters, total));
    }
}

fn report(name: &str, throughput: Option<Throughput>, bencher: &Bencher) {
    match bencher.result {
        Some((iters, total)) => {
            let per = total.as_nanos() as f64 / iters as f64;
            let rate = match throughput {
                Some(Throughput::Bytes(b)) if per > 0.0 => {
                    format!("  {:>10.1} MiB/s", b as f64 / per * 1e9 / (1 << 20) as f64)
                }
                Some(Throughput::Elements(e)) if per > 0.0 => {
                    format!("  {:>10.1} Kelem/s", e as f64 / per * 1e9 / 1e3)
                }
                _ => String::new(),
            };
            println!("bench {name:<40} {:>12.1} ns/iter ({iters} iters){rate}", per);
        }
        None => println!("bench {name:<40} (no measurement)"),
    }
}

/// A named group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Criterion-API shim; sample counting is folded into the time window.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// How long each benchmark should measure for.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        // Cap so `cargo bench` stays responsive under the stub harness.
        self.measurement_time = d.min(Duration::from_secs(5));
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            result: None,
            measurement_time: self.measurement_time,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), self.throughput, &b);
        self
    }

    /// Run one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            result: None,
            measurement_time: self.measurement_time,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), self.throughput, &b);
        self
    }

    /// End the group (no-op in the stub).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measurement_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            result: None,
            measurement_time: self.measurement_time,
        };
        f(&mut b);
        report(name, None, &b);
        self
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let measurement_time = self.measurement_time;
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            measurement_time,
            _parent: self,
        }
    }
}

/// Collect benchmark functions into a runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $cfg;
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.measurement_time = Duration::from_millis(5);
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.measurement_time(Duration::from_millis(5));
        g.throughput(Throughput::Bytes(1024));
        g.bench_function(BenchmarkId::new("f", 1), |b| b.iter(|| black_box(2 * 2)));
        g.bench_with_input(BenchmarkId::new("g", 2), &7u64, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        quick(&mut Criterion::default());
    }
}
