//! Offline crossbeam shim.
//!
//! The workspace only uses `crossbeam::scope`, which std has provided
//! natively since 1.63 as `std::thread::scope`. This stub adapts the
//! crossbeam calling convention (spawn closures receive the scope, the
//! outer call returns `thread::Result`) onto the std implementation.

/// Scoped-thread handle mirroring `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread bound to the scope. The closure receives the scope
    /// (crossbeam convention) so it can spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Run `f` with a scope in which borrowed-data threads can be spawned; all
/// threads are joined before this returns. Panics in child threads surface
/// as a panic here (std behavior), so `Err` is never actually produced —
/// kept in the signature for crossbeam compatibility.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

/// Namespace-compatibility module (`crossbeam::thread::scope`).
pub mod thread {
    pub use super::{scope, Scope};
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_borrow() {
        let data = vec![1u64, 2, 3, 4];
        let total = std::sync::atomic::AtomicU64::new(0);
        super::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    let sum: u64 = chunk.iter().sum();
                    total.fetch_add(sum, std::sync::atomic::Ordering::SeqCst);
                });
            }
        })
        .expect("no panics");
        assert_eq!(total.into_inner(), 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let hits = std::sync::atomic::AtomicU32::new(0);
        super::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| {
                    hits.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
            });
        })
        .expect("no panics");
        assert_eq!(hits.into_inner(), 1);
    }
}
