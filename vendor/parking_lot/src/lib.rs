//! Offline parking_lot facade.
//!
//! Wraps `std::sync` primitives with the parking_lot calling convention
//! (no lock poisoning: a panicked holder releases the lock and later
//! acquisitions proceed with the data as-is).

/// Mutual exclusion with parking_lot's unpoisoned API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (ignores poisoning, as parking_lot does).
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<std::sync::MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

/// Reader-writer lock with parking_lot's unpoisoned API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire exclusive access.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
