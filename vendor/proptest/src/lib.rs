//! Offline mini-proptest.
//!
//! A deterministic property-testing engine exposing the subset of the
//! `proptest` crate surface this workspace uses: the `proptest!` macro,
//! `prop_assert*` / `prop_assume!`, `any::<T>()`, integer/float range
//! strategies, tuple strategies, `collection::vec`, and a small
//! `string::string_regex` generator. No shrinking — a failing case panics
//! with the generated inputs' debug representation so it can be replayed.
//!
//! Cases are generated from a SplitMix64 stream seeded by the test name, so
//! runs are fully reproducible across machines and invocations.

/// Runner configuration and error plumbing.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` successful cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single generated case did not succeed.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the inputs; try another case.
        Reject(String),
        /// A `prop_assert*` failed; the property is false.
        Fail(String),
    }

    /// Deterministic generator state (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Stream for one case of one named property.
        pub fn for_case(name: &str, case: u32) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            }
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            // Modulo bias is irrelevant at test-generation quality.
            self.next_u64() % n
        }

        /// Uniform in `[0, 1)`.
        pub fn f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// Something that can produce values of one type from the test RNG.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy for [`Arbitrary`] types; build with [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The full range of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Printable ASCII keeps failures readable.
            (0x20 + rng.below(0x5f) as u8) as char
        }
    }

    macro_rules! range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
        )*};
    }
    range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + rng.f64() as f32 * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);

    /// Constant strategy (`Just(x)` always yields a clone of `x`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `size.start ..size.end-1` elements, each from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// String strategies.
pub mod string {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding strings matching a (subset) regex.
    pub struct RegexGeneratorStrategy {
        alternatives: Vec<Vec<Node>>,
    }

    #[derive(Debug, Clone)]
    enum Node {
        Char(char),
        /// Inclusive character ranges, e.g. `[a-z0-9_]`.
        Class(Vec<(char, char)>),
        Group(Vec<Vec<Node>>),
        Repeat(Box<Node>, u32, u32),
    }

    /// Build a generator for the regex subset: literals, `[...]` classes
    /// (ranges and singles), `(...)` groups, `|` alternation, and the
    /// quantifiers `{n}`, `{m,n}`, `?`, `*`, `+` (unbounded capped at 8).
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0;
        let alternatives = parse_alternatives(&chars, &mut pos)?;
        if pos != chars.len() {
            return Err(format!("unexpected {:?} at {pos}", chars[pos]));
        }
        Ok(RegexGeneratorStrategy { alternatives })
    }

    fn parse_alternatives(chars: &[char], pos: &mut usize) -> Result<Vec<Vec<Node>>, String> {
        let mut alts = vec![parse_seq(chars, pos)?];
        while *pos < chars.len() && chars[*pos] == '|' {
            *pos += 1;
            alts.push(parse_seq(chars, pos)?);
        }
        Ok(alts)
    }

    fn parse_seq(chars: &[char], pos: &mut usize) -> Result<Vec<Node>, String> {
        let mut seq = Vec::new();
        while *pos < chars.len() {
            let node = match chars[*pos] {
                ')' | '|' => break,
                '(' => {
                    *pos += 1;
                    let alts = parse_alternatives(chars, pos)?;
                    if *pos >= chars.len() || chars[*pos] != ')' {
                        return Err("unclosed group".into());
                    }
                    *pos += 1;
                    Node::Group(alts)
                }
                '[' => {
                    *pos += 1;
                    let mut ranges = Vec::new();
                    while *pos < chars.len() && chars[*pos] != ']' {
                        let lo = chars[*pos];
                        *pos += 1;
                        if *pos + 1 < chars.len() && chars[*pos] == '-' && chars[*pos + 1] != ']'
                        {
                            let hi = chars[*pos + 1];
                            *pos += 2;
                            ranges.push((lo, hi));
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    if *pos >= chars.len() {
                        return Err("unclosed class".into());
                    }
                    *pos += 1;
                    Node::Class(ranges)
                }
                '\\' => {
                    *pos += 1;
                    if *pos >= chars.len() {
                        return Err("dangling escape".into());
                    }
                    let c = chars[*pos];
                    *pos += 1;
                    Node::Char(c)
                }
                c => {
                    *pos += 1;
                    Node::Char(c)
                }
            };
            // Optional quantifier.
            let node = if *pos < chars.len() {
                match chars[*pos] {
                    '{' => {
                        *pos += 1;
                        let lo = parse_number(chars, pos)?;
                        let hi = if chars.get(*pos) == Some(&',') {
                            *pos += 1;
                            parse_number(chars, pos)?
                        } else {
                            lo
                        };
                        if chars.get(*pos) != Some(&'}') {
                            return Err("unclosed quantifier".into());
                        }
                        *pos += 1;
                        Node::Repeat(Box::new(node), lo, hi)
                    }
                    '?' => {
                        *pos += 1;
                        Node::Repeat(Box::new(node), 0, 1)
                    }
                    '*' => {
                        *pos += 1;
                        Node::Repeat(Box::new(node), 0, 8)
                    }
                    '+' => {
                        *pos += 1;
                        Node::Repeat(Box::new(node), 1, 8)
                    }
                    _ => node,
                }
            } else {
                node
            };
            seq.push(node);
        }
        Ok(seq)
    }

    fn parse_number(chars: &[char], pos: &mut usize) -> Result<u32, String> {
        let start = *pos;
        while *pos < chars.len() && chars[*pos].is_ascii_digit() {
            *pos += 1;
        }
        chars[start..*pos]
            .iter()
            .collect::<String>()
            .parse()
            .map_err(|_| "bad quantifier number".to_string())
    }

    fn gen_node(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Char(c) => out.push(*c),
            Node::Class(ranges) => {
                let total: u32 = ranges.iter().map(|(a, b)| *b as u32 - *a as u32 + 1).sum();
                let mut pick = rng.below(total.max(1) as u64) as u32;
                for (a, b) in ranges {
                    let n = *b as u32 - *a as u32 + 1;
                    if pick < n {
                        out.push(char::from_u32(*a as u32 + pick).unwrap_or(*a));
                        return;
                    }
                    pick -= n;
                }
            }
            Node::Group(alts) => {
                let alt = &alts[rng.below(alts.len() as u64) as usize];
                for n in alt {
                    gen_node(n, rng, out);
                }
            }
            Node::Repeat(inner, lo, hi) => {
                let count = lo + rng.below((*hi - *lo + 1) as u64) as u32;
                for _ in 0..count {
                    gen_node(inner, rng, out);
                }
            }
        }
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            let alt = &self.alternatives[rng.below(self.alternatives.len() as u64) as usize];
            for n in alt {
                gen_node(n, rng, &mut out);
            }
            out
        }
    }
}

/// The glob-import surface test files expect.
pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests. Mirrors `proptest::proptest!` for the supported
/// shape: an optional `#![proptest_config(...)]` followed by `#[test]`
/// functions whose arguments are `name in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __ok: u32 = 0;
                let mut __tries: u32 = 0;
                while __ok < __cfg.cases {
                    __tries += 1;
                    assert!(
                        __tries <= __cfg.cases.saturating_mul(16).saturating_add(256),
                        "prop_assume! rejected too many cases"
                    );
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __tries,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    match __result {
                        ::std::result::Result::Ok(()) => __ok += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property {} failed on case {} (try {}): {}",
                                stringify!($name), __ok, __tries, msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), __l, __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left), stringify!($right), __l
                ),
            ));
        }
    }};
}

/// Skip the current case (generate a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in -5i32..5, f in 0.25f64..0.75) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f), "f out of range: {f}");
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(any::<u8>(), 3usize..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
        }

        #[test]
        fn assume_filters(n in 0u32..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }
    }

    #[test]
    fn regex_generates_matching_shape() {
        let strat = crate::string::string_regex("[a-z]{1,12}(/[a-z]{1,12}){0,3}").unwrap();
        let mut rng = TestRng::for_case("regex", 1);
        for case in 0..200 {
            let s = strat.generate(&mut rng);
            assert!(!s.is_empty(), "case {case}");
            for part in s.split('/') {
                assert!(
                    (1..=12).contains(&part.len()) && part.bytes().all(|b| b.is_ascii_lowercase()),
                    "bad part {part:?} of {s:?}"
                );
            }
            assert!(s.split('/').count() <= 4);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_case("x", 7);
        let mut b = TestRng::for_case("x", 7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
