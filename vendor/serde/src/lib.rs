//! Offline mini-serde.
//!
//! The container cannot reach crates.io, so the workspace vendors a small
//! JSON-oriented stand-in for the serde surface it uses: a [`Value`] tree,
//! [`Serialize`]/[`Deserialize`] traits converting to/from it, and derive
//! macros (re-exported from the companion `serde_derive` stub) for plain
//! structs with named fields and unit-variant enums. `serde_json` in
//! `vendor/serde_json` supplies the text layer.
//!
//! Object keys preserve insertion order, so serialization is deterministic —
//! a property the campaign's byte-identical-output tests rely on.

pub use serde_derive::{Deserialize, Serialize};

/// JSON value tree (insertion-ordered objects).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer that does not fit `i64`'s positive range semantics.
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Like [`Value::get`] but with a typed error (used by derived code).
    pub fn get_field(&self, key: &str) -> Result<&Value, Error> {
        self.get(key)
            .ok_or_else(|| Error::custom(format!("missing field {key:?}")))
    }

    /// The string payload, or a type error.
    pub fn as_str(&self) -> Result<&str, Error> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }

    /// Numeric payload widened to f64, when the value is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from any message.
    pub fn custom(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Convert a value into the JSON [`Value`] tree.
pub trait Serialize {
    /// The JSON representation of `self`.
    fn to_value(&self) -> Value;
}

/// Rebuild a value from the JSON [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse `self` out of a JSON value.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::Int(i) => <$t>::try_from(i)
                        .map_err(|_| Error::custom(format!("{i} out of range"))),
                    Value::UInt(u) => <$t>::try_from(u)
                        .map_err(|_| Error::custom(format!("{u} out of range"))),
                    ref other => Err(Error::custom(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize, u8, u16, u32);

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(*self as u64),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::Int(i) => <$t>::try_from(i)
                        .map_err(|_| Error::custom(format!("{i} out of range"))),
                    Value::UInt(u) => <$t>::try_from(u)
                        .map_err(|_| Error::custom(format!("{u} out of range"))),
                    ref other => Err(Error::custom(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_uint!(u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        // Symmetric with serialization: non-finite floats serialize as
        // null (JSON has no NaN/Inf), so null deserializes back to NaN.
        // This keeps float-bearing structs round-trippable.
        if matches!(v, Value::Null) {
            return Ok(f64::NAN);
        }
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            ref other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_string)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::custom(format!("expected 2-element array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2, 3].to_value()).unwrap(),
            vec![1, 2, 3]
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        let pair = ("zone".to_string(), 3u32);
        assert_eq!(
            <(String, u32)>::from_value(&pair.to_value()).unwrap(),
            pair
        );
    }

    #[test]
    fn object_lookup() {
        let v = Value::Object(vec![("a".into(), Value::Int(1))]);
        assert_eq!(v.get("a"), Some(&Value::Int(1)));
        assert!(v.get_field("b").is_err());
    }
}
