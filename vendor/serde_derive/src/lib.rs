//! Derive macros for the vendored mini-serde.
//!
//! Supports the shapes frostlab actually serializes: structs with named
//! fields, and enums whose variants carry no data (serialized as their
//! variant name). Two field attributes are honoured, with the same
//! semantics as real serde:
//!
//! * `#[serde(default)]` — a missing key deserializes to
//!   `Default::default()` instead of erroring, so old manifests keep
//!   parsing after a field is added;
//! * `#[serde(skip_serializing_if = "path")]` — the field stays out of
//!   the emitted object when `path(&field)` is true, so default values
//!   do not perturb canonical JSON (and therefore content hashes).
//!
//! Anything fancier fails with a compile error pointing here.
//!
//! Written against `proc_macro` directly (no `syn`/`quote`: the container
//! has no crates.io access), so parsing is a small hand-rolled token walk.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named struct field (or unit enum variant) plus its serde attrs.
struct Member {
    name: String,
    /// `#[serde(default)]`: tolerate a missing key on deserialize.
    default: bool,
    /// `#[serde(skip_serializing_if = "path")]`: predicate path.
    skip_if: Option<String>,
}

enum Shape {
    /// Struct with named fields.
    Struct { name: String, fields: Vec<Member> },
    /// Enum with unit variants only.
    Enum { name: String, variants: Vec<Member> },
}

/// Walk the item's tokens: skip attributes and visibility, find
/// `struct`/`enum`, the type name, then the brace group with the members.
fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let mut iter = input.into_iter().peekable();
    let mut kind: Option<String> = None;
    let mut name: Option<String> = None;
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Attribute: consume the following bracket group.
                iter.next();
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                match (s.as_str(), &kind, &name) {
                    ("pub" | "crate", _, _) => {}
                    ("struct" | "enum", None, _) => kind = Some(s),
                    (_, Some(_), None) => name = Some(s),
                    _ => {}
                }
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                let name = name.ok_or("no type name before body")?;
                let members = parse_members(g.stream())?;
                return match kind.as_deref() {
                    Some("struct") => Ok(Shape::Struct {
                        name,
                        fields: members,
                    }),
                    Some("enum") => Ok(Shape::Enum {
                        name,
                        variants: members,
                    }),
                    _ => Err("not a struct or enum".into()),
                };
            }
            TokenTree::Punct(p) if p.as_char() == '<' => {
                return Err("generic types are not supported by mini-serde derive".into());
            }
            TokenTree::Punct(p) if p.as_char() == ';' => {
                return Err("tuple/unit structs are not supported by mini-serde derive".into());
            }
            _ => {}
        }
    }
    Err("could not parse item".into())
}

/// Parse one `#[serde(...)]` attribute body (the bracket group's stream)
/// into `member`. Non-serde attributes (`doc`, …) are ignored by the
/// caller before we get here.
fn parse_serde_attr(stream: TokenStream, member: &mut Member) -> Result<(), String> {
    // stream = `serde ( ... )`
    let mut iter = stream.into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return Ok(()), // not a serde attribute after all
    }
    let Some(TokenTree::Group(g)) = iter.next() else {
        return Err("malformed #[serde] attribute".into());
    };
    let mut inner = g.stream().into_iter().peekable();
    while let Some(tt) = inner.next() {
        match tt {
            TokenTree::Ident(id) => match id.to_string().as_str() {
                "default" => member.default = true,
                "skip_serializing_if" => {
                    match (inner.next(), inner.next()) {
                        (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
                            if eq.as_char() == '=' =>
                        {
                            let raw = lit.to_string();
                            let path = raw.trim_matches('"').to_string();
                            if path.is_empty() || path.len() + 2 != raw.len() {
                                return Err(format!(
                                    "skip_serializing_if wants a string literal path, got {raw}"
                                ));
                            }
                            member.skip_if = Some(path);
                        }
                        _ => return Err("skip_serializing_if wants = \"path\"".into()),
                    }
                }
                other => {
                    return Err(format!(
                        "unsupported serde attribute {other:?} (mini-serde knows \
                         default and skip_serializing_if)"
                    ))
                }
            },
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            other => return Err(format!("unexpected token in #[serde(...)]: {other}")),
        }
    }
    Ok(())
}

/// Within the brace group, member names are the first ident of each
/// comma-separated chunk (after attributes/visibility). For enums, a chunk
/// containing a group or extra tokens after the name means a data-carrying
/// variant, which we reject.
fn parse_members(body: TokenStream) -> Result<Vec<Member>, String> {
    let mut members = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility at chunk start, harvesting any
        // #[serde(...)] bodies into the pending member.
        let mut pending = Member {
            name: String::new(),
            default: false,
            skip_if: None,
        };
        let mut first: Option<String> = None;
        let mut saw_colon = false;
        let mut ended = true;
        for tt in iter.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '#' => {}
                TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket && first.is_none() => {
                    parse_serde_attr(g.stream(), &mut pending)?;
                }
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    ended = false;
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == ':' => saw_colon = true,
                TokenTree::Ident(id) => {
                    let s = id.to_string();
                    if s == "pub" || saw_colon {
                        continue;
                    }
                    if first.is_none() {
                        first = Some(s);
                    }
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis && !saw_colon => {
                    return Err(format!(
                        "variant {:?} carries data; mini-serde derive handles unit variants only",
                        first
                    ));
                }
                _ => {}
            }
        }
        if let Some(f) = first {
            pending.name = f;
            members.push(pending);
        }
        if ended {
            break;
        }
    }
    Ok(members)
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Derive `serde::Serialize` (mini-serde: `to_value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_shape(input) {
        Ok(Shape::Struct { name, fields }) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    let fname = &f.name;
                    let push = format!(
                        "fields.push((\"{fname}\".to_string(), \
                         ::serde::Serialize::to_value(&self.{fname})));"
                    );
                    match &f.skip_if {
                        Some(pred) => format!("if !{pred}(&self.{fname}) {{ {push} }}\n"),
                        None => format!("{push}\n"),
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(fields)\n\
                     }}\n\
                 }}"
            )
        }
        Ok(Shape::Enum { name, variants }) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\",", v = v.name))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Str(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
        Err(e) => return compile_error(&e),
    };
    out.parse().unwrap()
}

/// Derive `serde::Deserialize` (mini-serde: `from_value`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_shape(input) {
        Ok(Shape::Struct { name, fields }) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    let fname = &f.name;
                    if f.default {
                        format!(
                            "{fname}: match v.get(\"{fname}\") {{\n\
                                 Some(x) => ::serde::Deserialize::from_value(x)?,\n\
                                 None => ::core::default::Default::default(),\n\
                             }},"
                        )
                    } else {
                        format!(
                            "{fname}: ::serde::Deserialize::from_value(v.get_field(\"{fname}\")?)?,"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         Ok(Self {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Ok(Shape::Enum { name, variants }) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),", v = v.name))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         match v.as_str()? {{\n\
                             {arms}\n\
                             other => Err(::serde::Error::custom(format!(\n\
                                 \"unknown {name} variant {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Err(e) => return compile_error(&e),
    };
    out.parse().unwrap()
}
