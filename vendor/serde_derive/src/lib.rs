//! Derive macros for the vendored mini-serde.
//!
//! Supports the shapes frostlab actually serializes: structs with named
//! fields, and enums whose variants carry no data (serialized as their
//! variant name). Anything fancier fails with a compile error pointing here.
//!
//! Written against `proc_macro` directly (no `syn`/`quote`: the container
//! has no crates.io access), so parsing is a small hand-rolled token walk.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Struct with named fields.
    Struct { name: String, fields: Vec<String> },
    /// Enum with unit variants only.
    Enum { name: String, variants: Vec<String> },
}

/// Walk the item's tokens: skip attributes and visibility, find
/// `struct`/`enum`, the type name, then the brace group with the members.
fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let mut iter = input.into_iter().peekable();
    let mut kind: Option<String> = None;
    let mut name: Option<String> = None;
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Attribute: consume the following bracket group.
                iter.next();
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                match (s.as_str(), &kind, &name) {
                    ("pub" | "crate", _, _) => {}
                    ("struct" | "enum", None, _) => kind = Some(s),
                    (_, Some(_), None) => name = Some(s),
                    _ => {}
                }
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                let name = name.ok_or("no type name before body")?;
                let members = parse_members(g.stream())?;
                return match kind.as_deref() {
                    Some("struct") => Ok(Shape::Struct {
                        name,
                        fields: members,
                    }),
                    Some("enum") => Ok(Shape::Enum {
                        name,
                        variants: members,
                    }),
                    _ => Err("not a struct or enum".into()),
                };
            }
            TokenTree::Punct(p) if p.as_char() == '<' => {
                return Err("generic types are not supported by mini-serde derive".into());
            }
            TokenTree::Punct(p) if p.as_char() == ';' => {
                return Err("tuple/unit structs are not supported by mini-serde derive".into());
            }
            _ => {}
        }
    }
    Err("could not parse item".into())
}

/// Within the brace group, member names are the first ident of each
/// comma-separated chunk (after attributes/visibility). For enums, a chunk
/// containing a group or extra tokens after the name means a data-carrying
/// variant, which we reject.
fn parse_members(body: TokenStream) -> Result<Vec<String>, String> {
    let mut members = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility at chunk start.
        let mut first: Option<String> = None;
        let mut saw_colon = false;
        let mut ended = true;
        for tt in iter.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '#' => {}
                TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket && first.is_none() => {
                    // attribute body
                    let _ = g;
                }
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    ended = false;
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == ':' => saw_colon = true,
                TokenTree::Ident(id) => {
                    let s = id.to_string();
                    if s == "pub" || saw_colon {
                        continue;
                    }
                    if first.is_none() {
                        first = Some(s);
                    }
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis && !saw_colon => {
                    return Err(format!(
                        "variant {:?} carries data; mini-serde derive handles unit variants only",
                        first
                    ));
                }
                _ => {}
            }
        }
        if let Some(f) = first {
            members.push(f);
        }
        if ended {
            break;
        }
    }
    Ok(members)
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Derive `serde::Serialize` (mini-serde: `to_value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_shape(input) {
        Ok(Shape::Struct { name, fields }) => {
            let pairs: String = fields
                .iter()
                .map(|f| {
                    format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),")
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{pairs}])\n\
                     }}\n\
                 }}"
            )
        }
        Ok(Shape::Enum { name, variants }) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\","))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Str(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
        Err(e) => return compile_error(&e),
    };
    out.parse().unwrap()
}

/// Derive `serde::Deserialize` (mini-serde: `from_value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_shape(input) {
        Ok(Shape::Struct { name, fields }) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(v.get_field(\"{f}\")?)?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         Ok(Self {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Ok(Shape::Enum { name, variants }) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         match v.as_str()? {{\n\
                             {arms}\n\
                             other => Err(::serde::Error::custom(format!(\n\
                                 \"unknown {name} variant {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Err(e) => return compile_error(&e),
    };
    out.parse().unwrap()
}
