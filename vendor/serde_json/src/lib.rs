//! Offline mini `serde_json`: text layer over the vendored mini-serde.
//!
//! Provides exactly the entry points the workspace uses —
//! [`to_string`], [`to_string_pretty`], [`from_str`], and the [`Value`]
//! re-export — with deterministic output (insertion-ordered objects,
//! shortest round-trippable float formatting).

pub use serde::{Error, Value};

use serde::{Deserialize, Serialize};

/// Serialize to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parse a value out of JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!("trailing data at byte {}", p.pos)));
    }
    T::from_value(&v)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        // Real serde_json refuses non-finite floats; emitting null matches
        // its Value behavior and keeps campaign summaries printable.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep a ".0" so the value visibly stays a float.
        out.push_str(&format!("{f:.1}"));
    } else {
        // `{}` on f64 prints the shortest string that parses back exactly.
        out.push_str(&format!("{f}"));
    }
}

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    let (nl, pad, pad_in, colon) = match indent {
        Some(w) => (
            "\n",
            " ".repeat(w * depth),
            " ".repeat(w * (depth + 1)),
            ": ",
        ),
        None => ("", String::new(), String::new(), ":"),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(item, indent, depth + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_escaped(k, out);
                out.push_str(colon);
                write_value(item, indent, depth + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::custom(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.lit("null", Value::Null),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error::custom(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::custom(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("short \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid utf-8"))?;
                    let c = rest.chars().next().ok_or_else(|| Error::custom("eof"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("bad float {text:?}")))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Int(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::UInt(u))
        } else {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("bad number {text:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_through_text() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("tent \"x\"\n".into())),
            ("n".into(), Value::Int(-3)),
            ("big".into(), Value::UInt(u64::MAX)),
            ("pi".into(), Value::Float(3.141592653589793)),
            ("whole".into(), Value::Float(2.0)),
            ("ok".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            (
                "xs".into(),
                Value::Array(vec![Value::Int(1), Value::Int(2)]),
            ),
        ]);
        let compact = to_string(&v).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Value>(&compact).unwrap(), v);
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
        assert!(pretty.contains("\n  \"name\""));
    }

    #[test]
    fn floats_keep_exact_value() {
        let x = 0.1f64 + 0.2;
        let s = to_string(&x).unwrap();
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("{} {}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
    }
}
